//! DM+ — the HierMatcher-style hierarchical matching baseline (Fu et al.,
//! IJCAI 2020) the paper uses to "optimize DeepMatcher for the collective
//! ER model" (Table 7).
//!
//! Token-level cross-attention aligns each left token with the right
//! attribute's tokens; per-attribute comparison vectors are aggregated
//! hierarchically with graph attention into an entity-level representation.

use crate::traits::PairModel;
use hiergat_data::EntityPair;
use hiergat_graph::GraphAttn;
use hiergat_nn::{Adam, ArenaExecutor, ExecutionPlan, Linear, Optimizer, ParamStore, Tape, Var};
use hiergat_tensor::Tensor;
use hiergat_text::{tokenize, StaticHashEmbedding};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DM+ configuration.
#[derive(Debug, Clone, Copy)]
pub struct DmPlusConfig {
    /// Embedding width.
    pub d: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Maximum tokens per attribute.
    pub max_tokens: usize,
    /// Run training steps through the arena planner (zero steady-state
    /// allocations, bitwise-identical arithmetic).
    pub use_arena: bool,
}

impl Default for DmPlusConfig {
    fn default() -> Self {
        Self { d: 32, epochs: 10, lr: 1e-3, seed: 0xd3b5, max_tokens: 24, use_arena: false }
    }
}

/// The DM+ model.
pub struct DmPlus {
    cfg: DmPlusConfig,
    ps: ParamStore,
    emb: StaticHashEmbedding,
    proj: Linear,
    attr_agg: GraphAttn,
    cls_hidden: Linear,
    cls_out: Linear,
    opt: Adam,
    arity: usize,
    exec: ArenaExecutor,
}

impl DmPlus {
    /// Builds a model for entities with `arity` attributes.
    pub fn new(cfg: DmPlusConfig, arity: usize) -> Self {
        assert!(arity > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let proj = Linear::new(&mut ps, "dmp.proj", cfg.d, cfg.d, true, &mut rng);
        let attr_agg = GraphAttn::new(&mut ps, "dmp.attr_agg", cfg.d, cfg.d, &mut rng);
        let cls_hidden = Linear::new(&mut ps, "dmp.cls_hidden", cfg.d, cfg.d, true, &mut rng);
        let cls_out = Linear::new(&mut ps, "dmp.cls_out", cfg.d, 2, true, &mut rng);
        let emb = StaticHashEmbedding::new(cfg.d, 4096, 2048, cfg.seed ^ 0x5eed);
        let opt = Adam::new(cfg.lr);
        Self {
            cfg,
            ps,
            emb,
            proj,
            attr_agg,
            cls_hidden,
            cls_out,
            opt,
            arity,
            exec: ArenaExecutor::new(),
        }
    }

    /// Token-level alignment comparison of one attribute pair.
    fn compare_attr(&self, t: &mut Tape, lv: &str, rv: &str) -> Var {
        let mut lt = tokenize(lv);
        let mut rt = tokenize(rv);
        lt.truncate(self.cfg.max_tokens);
        rt.truncate(self.cfg.max_tokens);
        if lt.is_empty() || rt.is_empty() {
            return t.input(Tensor::zeros(1, self.cfg.d));
        }
        let l_raw = t.input(self.emb.embed_sequence(&lt));
        let r_raw = t.input(self.emb.embed_sequence(&rt));
        let l = {
            let p = self.proj.forward(t, &self.ps, l_raw);
            t.tanh(p)
        };
        let r = {
            let p = self.proj.forward(t, &self.ps, r_raw);
            t.tanh(p)
        };
        // Cross attention: each left token attends over right tokens.
        let scores = t.matmul_nt(l, r); // n x m
        let att = t.softmax(scores);
        let aligned = t.matmul(att, r); // n x d
                                        // Elementwise comparison |L - aligned| averaged over tokens.
        let diff = {
            let d = t.sub(l, aligned);
            let pos = t.relu(d);
            let nd = t.scale(d, -1.0);
            let neg = t.relu(nd);
            t.add(pos, neg)
        };
        t.mean_rows(diff)
    }

    fn forward(&self, t: &mut Tape, pair: &EntityPair) -> Var {
        let mut comps = Vec::with_capacity(self.arity);
        for k in 0..self.arity {
            let (key, lv) =
                pair.left.attrs.get(k).map_or(("", ""), |(k, v)| (k.as_str(), v.as_str()));
            let rv = pair.right.attr(key).unwrap_or("");
            comps.push(self.compare_attr(t, lv, rv));
        }
        // Hierarchical aggregation: attention over attribute comparisons.
        let stacked = t.concat_rows(&comps);
        let agg = self.attr_agg.forward(t, &self.ps, stacked);
        let h = self.cls_hidden.forward(t, &self.ps, agg);
        let h = t.relu(h);
        self.cls_out.forward(t, &self.ps, h)
    }

    /// Statically analyzes the training graph for `pair` on a shape-only
    /// tape (no kernels run): shape inference, parameter reachability, and
    /// node liveness.
    pub fn analyze(&self, pair: &EntityPair) -> hiergat_nn::GraphReport {
        let mut t = Tape::shape_only();
        let logits = self.forward(&mut t, pair);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        hiergat_nn::analyze_graph(&t, loss, &self.ps)
    }

    /// Arena-planner report for the training graph of `pair` (shape-only
    /// recording; no kernels run).
    pub fn plan(&self, pair: &EntityPair) -> hiergat_nn::PlanReport {
        let mut t = Tape::deferred();
        let logits = self.forward(&mut t, pair);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        ExecutionPlan::build(&t, loss).report().clone()
    }

    /// Runs the [`hiergat_nn::lint_graph`] rule engine over the training
    /// graph (shape-only tape, training mode).
    pub fn lint(&self, pair: &EntityPair) -> hiergat_nn::LintReport {
        let mut t = Tape::shape_only();
        let logits = self.forward(&mut t, pair);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        hiergat_nn::lint_graph(&t, loss, &self.ps, &hiergat_nn::LintConfig::training())
    }

    /// Records the eval-mode scoring graph onto `t` — exactly the graph
    /// [`PairModel::predict_pair`] evaluates (DM+ has no dropout, so eval
    /// and train graphs coincide) — and returns the `1 x 2` probability
    /// node.
    pub fn record_pair_scores(&self, t: &mut Tape, pair: &EntityPair) -> Var {
        let logits = self.forward(t, pair);
        t.softmax(logits)
    }
}

impl PairModel for DmPlus {
    fn train_pair(&mut self, pair: &EntityPair) -> f32 {
        self.train_pair_weighted(pair, 1.0)
    }

    fn train_pair_weighted(&mut self, pair: &EntityPair, weight: f32) -> f32 {
        // Clearing at the start (rather than after the optimizer step) leaves
        // the step's clipped gradients observable for differential testing.
        self.ps.zero_grad();
        let mut t = if self.cfg.use_arena { Tape::deferred() } else { Tape::new() };
        let logits = self.forward(&mut t, pair);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[weight]);
        let val = if self.cfg.use_arena {
            self.exec.step(&t, loss, &mut self.ps)
        } else {
            let v = t.value(loss).item();
            t.backward(loss, &mut self.ps);
            v
        };
        self.ps.clip_grad_norm(5.0);
        self.opt.step(&mut self.ps);
        val
    }

    fn predict_pair(&self, pair: &EntityPair) -> f32 {
        let mut t = Tape::new();
        let probs = self.record_pair_scores(&mut t, pair);
        t.value(probs).get(0, 1)
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn epochs(&self) -> usize {
        self.cfg.epochs
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::Entity;

    fn pair(label: bool) -> EntityPair {
        EntityPair::new(
            Entity::new("l", vec![("t".into(), "canon eos camera".into())]),
            Entity::new("r", vec![("t".into(), "canon camera eos".into())]),
            label,
        )
    }

    #[test]
    fn lint_passes_at_deny_warn() {
        let m = DmPlus::new(DmPlusConfig::default(), 1);
        let report = m.lint(&pair(true));
        assert!(
            report.is_clean_at(hiergat_nn::Severity::Warn),
            "DM+ graph must lint clean:\n{report}"
        );
    }

    #[test]
    fn word_order_invariance_through_alignment() {
        // Cross-attention alignment makes reordered-but-identical token sets
        // produce near-zero comparison vectors (high similarity).
        let mut m = DmPlus::new(DmPlusConfig::default(), 1);
        let same_reordered = m.predict_pair(&pair(true));
        let different = m.predict_pair(&EntityPair::new(
            Entity::new("l", vec![("t".into(), "canon eos camera".into())]),
            Entity::new("r", vec![("t".into(), "leather wallet brown".into())]),
            false,
        ));
        // Untrained scores are arbitrary, but the comparison feature norm is
        // much smaller for the aligned pair; check via repeated training.
        let ex_pos = pair(true);
        for _ in 0..150 {
            m.train_pair(&ex_pos);
        }
        let after = m.predict_pair(&ex_pos);
        assert!(after > 0.75, "trained positive score {after}");
        let _ = (same_reordered, different);
    }

    #[test]
    fn loss_decreases() {
        let mut m = DmPlus::new(DmPlusConfig::default(), 1);
        let ex = pair(true);
        let first = m.train_pair(&ex);
        let mut last = first;
        for _ in 0..20 {
            last = m.train_pair(&ex);
        }
        assert!(last < first);
    }

    #[test]
    fn empty_values_yield_finite_scores() {
        let m = DmPlus::new(DmPlusConfig::default(), 1);
        let p = m.predict_pair(&EntityPair::new(
            Entity::new("l", vec![("t".into(), "".into())]),
            Entity::new("r", vec![("t".into(), "x".into())]),
            false,
        ));
        assert!(p.is_finite());
    }
}
