//! Dense 2-D `f32` tensor kernels for the HierGAT entity-resolution stack.
//!
//! This crate is the numerical substrate of the reproduction: every model in
//! the workspace (HierGAT itself, the Ditto/DeepMatcher/GNN baselines, and
//! the miniature pre-trained language models) is built from the operations
//! defined here, driven by the reverse-mode autograd tape in `hiergat-nn`.
//!
//! Design notes:
//!
//! * Tensors are **row-major, two-dimensional, `f32`**. Sequences are `n x d`
//!   matrices (one row per token), scalars are `1 x 1`. The models in the
//!   paper process one entity pair (or one `1 + N` candidate set) at a time,
//!   so no batched 3-D/4-D shapes are needed; multi-head attention slices
//!   columns instead.
//! * Shape mismatches are programming errors, not recoverable conditions, so
//!   the arithmetic kernels `assert!` with a descriptive message (the same
//!   contract `ndarray` uses). Fallible construction from user input goes
//!   through [`Tensor::from_vec`], which returns a [`ShapeError`].
//! * The hot loop (matmul) routes through a register-blocked, cache-tiled
//!   microkernel ([`microkernel`]; packed operand panels, `MR x NR`
//!   accumulator tiles) written so the autovectoriser emits SIMD from safe
//!   Rust. The optional `simd` cargo feature adds a runtime-detected
//!   AVX2+FMA `std::arch` tile — the crate's only unsafe code, gated on
//!   `is_x86_feature_detected!`. Results are bitwise identical across
//!   thread widths on every path; the `simd` build differs from the
//!   portable one only by FMA's single rounding per term.

//! # Example
//!
//! ```
//! use hiergat_tensor::Tensor;
//!
//! let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! assert_eq!(a.matmul(&b), a);
//! let s = a.softmax_rows();
//! assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! ```

pub mod arena;
pub mod audit;
pub mod cost;
mod dense;
mod init;
pub mod microkernel;
mod ops;
pub mod quant;
mod reduce;
mod slice;
mod stats;

pub use arena::{Arena, ArenaView, Span, SpanReader};
pub use audit::{race_audit, KernelAudit, RaceAuditReport};
pub use dense::{ShapeError, Tensor};
pub use ops::{
    gelu_grad_scalar, gelu_scalar, log_softmax_rows_inplace, matmul_into, matmul_nt_into,
    matmul_tn_into, softmax_rows_inplace,
};
pub use reduce::row_moments_into;
pub use stats::{alloc_stats, AllocStats};

#[cfg(test)]
mod proptests;
