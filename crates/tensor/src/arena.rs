//! A contiguous `f32` arena with planned spans and safe split-borrow views.
//!
//! The ahead-of-time planner in `hiergat-nn` assigns every tape node (and
//! gradient buffer) a [`Span`] inside one [`Arena`], reusing storage between
//! nodes whose live intervals do not overlap. Executing an op then needs to
//! *write* one span while *reading* others; [`Arena::view_mut`] hands out an
//! [`ArenaView`] that makes this safe without `unsafe`: the buffer is split
//! around the write span with `split_at_mut`, and every read is checked
//! against the write span.
//!
//! # Aliasing invariant
//! A correct plan never asks an op to read a span that overlaps the span it
//! is writing — two simultaneously-live buffers are assigned disjoint
//! storage. [`ArenaView::read`] panics if that invariant is violated, so a
//! planner bug surfaces as a loud failure instead of silent corruption.

/// A range of `f32` elements inside an [`Arena`]: `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First element index.
    pub start: usize,
    /// Number of elements.
    pub len: usize,
}

impl Span {
    /// The empty span (used for zero-sized buffers; never aliases anything).
    pub const EMPTY: Span = Span { start: 0, len: 0 };

    /// One past the last element.
    #[inline]
    pub fn end(self) -> usize {
        self.start + self.len
    }

    /// `true` if the two spans share at least one element.
    #[inline]
    pub fn overlaps(self, other: Span) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// One contiguous `f32` buffer holding every planned span.
#[derive(Debug, Default)]
pub struct Arena {
    buf: Vec<f32>,
}

impl Arena {
    /// An arena with no storage; grow it with [`Self::ensure_len`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the buffer to at least `len` elements (never shrinks, so a
    /// cached plan for a larger graph keeps its storage across steps).
    pub fn ensure_len(&mut self, len: usize) {
        if self.buf.len() < len {
            self.buf.resize(len, 0.0);
        }
    }

    /// Current capacity in elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if the arena holds no storage.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity in bytes — the high-water mark of every plan this
    /// arena has backed (`ensure_len` never shrinks).
    pub fn capacity_bytes(&self) -> u64 {
        self.buf.len() as u64 * size_of::<f32>() as u64
    }

    /// Immutable view of a span.
    #[inline]
    pub fn read(&self, s: Span) -> &[f32] {
        &self.buf[s.start..s.end()]
    }

    /// Mutable view of a span (sole borrow; use [`Self::view_mut`] when the
    /// op also needs to read other spans).
    #[inline]
    pub fn write(&mut self, s: Span) -> &mut [f32] {
        &mut self.buf[s.start..s.end()]
    }

    /// Splits the arena around write span `w`, returning a view that can
    /// mutate `w` while reading any non-overlapping span.
    #[inline]
    pub fn view_mut(&mut self, w: Span) -> ArenaView<'_> {
        let (lo, rest) = self.buf.split_at_mut(w.start);
        let (out, hi) = rest.split_at_mut(w.len);
        ArenaView { out, rd: SpanReader { lo, hi, w, hi_off: w.start + w.len } }
    }
}

/// Read access to everything in an [`Arena`] *except* one write span.
///
/// Shared references are `Copy`, so a `SpanReader` can be captured by value
/// while the matching write slice is lent out separately (see
/// [`ArenaView::split`]) — the shape kernels like `matmul_into` need input
/// and output slices at the same time.
#[derive(Clone, Copy)]
pub struct SpanReader<'a> {
    lo: &'a [f32],
    hi: &'a [f32],
    w: Span,
    hi_off: usize,
}

impl<'a> SpanReader<'a> {
    /// Reads a span that must not overlap the write span.
    ///
    /// # Panics
    /// Panics if `s` overlaps the write span — the planner's aliasing
    /// invariant guarantees this never happens for a correct plan.
    #[inline]
    pub fn read(&self, s: Span) -> &'a [f32] {
        if s.len == 0 {
            return &[];
        }
        assert!(
            !s.overlaps(self.w),
            "arena aliasing violation: read span [{}, {}) overlaps write span [{}, {})",
            s.start,
            s.end(),
            self.w.start,
            self.w.end()
        );
        if s.end() <= self.w.start {
            &self.lo[s.start..s.end()]
        } else {
            &self.hi[s.start - self.hi_off..s.end() - self.hi_off]
        }
    }
}

/// A split borrow of an [`Arena`]: one mutable write span plus read access
/// to everything else.
pub struct ArenaView<'a> {
    out: &'a mut [f32],
    rd: SpanReader<'a>,
}

impl<'a> ArenaView<'a> {
    /// The write span.
    #[inline]
    pub fn out(&mut self) -> &mut [f32] {
        self.out
    }

    /// Reads a span that must not overlap the write span (see
    /// [`SpanReader::read`] for the aliasing contract).
    #[inline]
    pub fn read(&self, s: Span) -> &[f32] {
        self.rd.read(s)
    }

    /// Consumes the view, handing out the write slice and the reader as
    /// independent borrows — required when one kernel call takes both.
    #[inline]
    pub fn split(self) -> (&'a mut [f32], SpanReader<'a>) {
        (self.out, self.rd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_overlap_cases() {
        let a = Span { start: 0, len: 4 };
        let b = Span { start: 4, len: 4 };
        let c = Span { start: 3, len: 2 };
        assert!(!a.overlaps(b));
        assert!(a.overlaps(c));
        assert!(b.overlaps(c));
        assert!(!Span::EMPTY.overlaps(a));
    }

    #[test]
    fn view_reads_both_sides_of_the_write_span() {
        let mut ar = Arena::new();
        ar.ensure_len(12);
        ar.write(Span { start: 0, len: 4 }).copy_from_slice(&[1.0; 4]);
        ar.write(Span { start: 8, len: 4 }).copy_from_slice(&[2.0; 4]);
        let mut v = ar.view_mut(Span { start: 4, len: 4 });
        let lo = v.read(Span { start: 0, len: 4 }).to_vec();
        let hi = v.read(Span { start: 8, len: 4 }).to_vec();
        for (o, (a, b)) in v.out().iter_mut().zip(lo.iter().zip(&hi)) {
            *o = a + b;
        }
        assert_eq!(ar.read(Span { start: 4, len: 4 }), &[3.0; 4]);
    }

    #[test]
    #[should_panic(expected = "aliasing violation")]
    fn overlapping_read_panics() {
        let mut ar = Arena::new();
        ar.ensure_len(8);
        let v = ar.view_mut(Span { start: 2, len: 4 });
        let _ = v.read(Span { start: 4, len: 2 });
    }

    #[test]
    fn ensure_len_never_shrinks() {
        let mut ar = Arena::new();
        ar.ensure_len(16);
        ar.ensure_len(4);
        assert_eq!(ar.len(), 16);
    }
}
