//! The [`Tensor`] type: a row-major, 2-D, `f32` matrix.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when constructing a tensor from data whose length does not
/// match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Rows requested by the caller.
    pub rows: usize,
    /// Columns requested by the caller.
    pub cols: usize,
    /// Length of the buffer actually supplied.
    pub len: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot view a buffer of length {} as a {}x{} tensor",
            self.len, self.rows, self.cols
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major, two-dimensional `f32` tensor.
///
/// `Tensor` is the only numeric container in the workspace. Rows typically
/// correspond to tokens (for sequences), graph nodes (for the HHG), or
/// examples (for classifier inputs); columns are feature dimensions.
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        crate::stats::record(self.data.len());
        Self { rows: self.rows, cols: self.cols, data: self.data.clone() }
    }
}

impl Tensor {
    /// Creates a `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        crate::stats::record(rows * cols);
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        crate::stats::record(rows * cols);
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a `1 x 1` tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        crate::stats::record(1);
        Self { rows: 1, cols: 1, data: vec![value] }
    }

    /// Creates a shape-only tensor with **no backing storage**.
    ///
    /// Deferred tapes record one placeholder per node: shape queries
    /// ([`Self::rows`], [`Self::cols`], [`Self::shape`]) work, but any data
    /// access panics on the empty buffer. Placeholders are never counted by
    /// [`crate::alloc_stats`] — their values live in a planned
    /// [`crate::Arena`] instead.
    pub fn placeholder(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: Vec::new() }
    }

    /// `true` if this tensor is a shape-only [`Self::placeholder`] (a
    /// non-empty shape whose backing buffer is missing).
    pub fn is_placeholder(&self) -> bool {
        self.data.len() != self.rows * self.cols
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// Returns a [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError { rows, cols, len: data.len() });
        }
        crate::stats::record(data.len());
        Ok(Self { rows, cols, data })
    }

    /// Creates a tensor from nested row slices.
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        crate::stats::record(data.len());
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        crate::stats::record(values.len());
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        crate::stats::record(values.len());
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` if the tensor is `1 x 1`.
    #[inline]
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Extracts the value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert!(self.is_scalar(), "item: tensor is {}x{}, not 1x1", self.rows, self.cols);
        self.data[0]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer with a new shape of the same element count.
    ///
    /// # Panics
    /// Panics if `rows * cols != self.len()`.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "reshape: cannot view {} elements as {rows}x{cols}",
            self.data.len()
        );
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Returns `true` if all elements differ from `other` by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for c in 0..max_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(r, c))?;
            }
            if self.cols > max_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(2, 2, vec![1.0; 3]).expect_err("3 values cannot fill 2x2");
        assert_eq!(err, ShapeError { rows: 2, cols: 2, len: 3 });
        assert!(err.to_string().contains("2x2"));
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(t.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn row_accessors() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert_eq!(t.get(1, 0), 3.0);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    #[should_panic(expected = "not 1x1")]
    fn item_panics_on_matrix() {
        Tensor::zeros(2, 2).item();
    }

    #[test]
    fn reshape_roundtrip() {
        let t =
            Tensor::from_vec(2, 3, (0..6).map(|i| i as f32).collect()).expect("6 values fill 2x3");
        let r = t.clone().reshape(3, 2);
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::full(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0005);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-4));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(1, 2);
        assert!(!t.has_non_finite());
        t.set(0, 1, f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn row_and_col_vectors() {
        let r = Tensor::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(r.shape(), (1, 3));
        let c = Tensor::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.get(2, 0), 3.0);
    }
}
