//! Write-disjointness race audit over the routed kernels.
//!
//! The pool-side recorder ([`parallel::audit`]) can capture the output
//! range each task claims; this module drives it over every routed kernel
//! — the `matmul` family (which splits its [`crate::microkernel`] tile
//! grid into `MR`-aligned row bands), the row-wise softmaxes, and
//! `row_moments` (row-block splits) — at a set of split widths, and
//! asserts via [`parallel::audit::verify`] that every split was pairwise
//! disjoint and covered the output exactly. For the tiled matmul split
//! the audit additionally asserts every non-tail claim starts **on a tile
//! boundary** (a multiple of `MR` output rows): a band that split
//! mid-tile would compute tiles from rows it does not own.
//!
//! Width 1 is part of the sweep on purpose: `par_row_blocks` must take the
//! direct serial call there (no pool entry point at all), so the audit
//! asserts **zero** recorded claims at width 1 and **at least one
//! verified splitting call** at every larger width. A kernel that quietly
//! stopped splitting (or started splitting when it should not) fails the
//! audit even though its output would still be bitwise correct.
//!
//! The harness backs both the `hiergat lint` race audit and the CI gate;
//! shapes are fixed and seeded so the claimed geometry is identical from
//! run to run.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Split widths the audit sweeps: the serial path, the smallest real
/// split, and the widest split `ci.sh` exercises.
pub const AUDIT_WIDTHS: [usize; 3] = [1, 2, 8];

/// Outcome of auditing one routed kernel at one split width.
#[derive(Debug, Clone, Serialize)]
pub struct KernelAudit {
    /// Kernel under audit (e.g. `"matmul"`).
    pub kernel: String,
    /// Split width the kernel ran under (`parallel::with_threads`).
    pub width: usize,
    /// Splitting pool calls the kernel made (0 on the serial path).
    pub pool_calls: usize,
    /// Task claims across those calls.
    pub tasks: usize,
    /// First violation found, if any (`None` = clean).
    pub error: Option<String>,
}

impl KernelAudit {
    /// `true` when this kernel/width combination produced no violation.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Full audit sweep: every routed kernel at every audited width.
#[derive(Debug, Clone, Serialize)]
pub struct RaceAuditReport {
    /// One entry per kernel x width combination.
    pub entries: Vec<KernelAudit>,
}

impl RaceAuditReport {
    /// `true` when every kernel/width combination verified clean.
    pub fn is_clean(&self) -> bool {
        self.entries.iter().all(KernelAudit::ok)
    }

    /// Entries that found a violation.
    pub fn failures(&self) -> Vec<&KernelAudit> {
        self.entries.iter().filter(|e| !e.ok()).collect()
    }
}

impl std::fmt::Display for RaceAuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for e in &self.entries {
            match &e.error {
                None => writeln!(
                    f,
                    "  ok   {:<16} width {}: {} call(s), {} task claim(s)",
                    e.kernel, e.width, e.pool_calls, e.tasks
                )?,
                Some(err) => {
                    writeln!(f, "  FAIL {:<16} width {}: {err}", e.kernel, e.width)?;
                }
            }
        }
        Ok(())
    }
}

/// Runs the full race audit at [`AUDIT_WIDTHS`].
pub fn race_audit() -> RaceAuditReport {
    race_audit_at(&AUDIT_WIDTHS)
}

/// Runs the race audit at the given split widths.
///
/// Shapes are chosen so every kernel clears [`crate::cost::PAR_FLOP_THRESHOLD`]
/// (and therefore genuinely splits at widths > 1) with row counts that do
/// not divide evenly by the split width, exercising the ragged tail block.
pub fn race_audit_at(widths: &[usize]) -> RaceAuditReport {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    // matmul family: 37 x 96 by 96 x 80 -> 568,320 FLOPs, over the tiled
    // path's 512K gate, with a ragged tile grid (ceil(37 / MR) = 7 tiles).
    let a = Tensor::rand_normal(37, 96, 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(96, 80, 0.0, 1.0, &mut rng);
    debug_assert!(crate::microkernel::takes_micro_path(37, 96, 80));
    // Transposed operands: 96 x 37 for matmul_tn, 80 x 96 for matmul_nt.
    let at = a.transpose();
    let bt = b.transpose();
    // Every matmul output is 37 x 80; tile-boundary checks need the width.
    let matmul_out_cols = b.cols();
    // softmax family: 67 x 128 -> 12 * 8,576 = 102,912 estimated FLOPs.
    let logits = Tensor::rand_normal(67, 128, 0.0, 1.0, &mut rng);
    // row_moments: 67 x 300 -> 67 * 1,202 = 80,534 estimated FLOPs.
    let stats_in = Tensor::rand_normal(67, 300, 0.0, 1.0, &mut rng);

    type Kernel<'a> = Box<dyn Fn() + Sync + 'a>;
    let kernels: Vec<(&'static str, Kernel<'_>)> = vec![
        ("matmul", Box::new(|| drop(a.matmul(&b)))),
        ("matmul_tn", Box::new(|| drop(at.matmul_tn(&b)))),
        ("matmul_nt", Box::new(|| drop(a.matmul_nt(&bt)))),
        ("softmax_rows", Box::new(|| drop(logits.softmax_rows()))),
        ("log_softmax_rows", Box::new(|| drop(logits.log_softmax_rows()))),
        ("row_moments", Box::new(|| drop(stats_in.row_moments()))),
    ];

    let mut entries = Vec::new();
    for &width in widths {
        for (name, run) in &kernels {
            let ((), claims) =
                parallel::audit::record_claims(|| parallel::with_threads(width, run));
            let entry = match parallel::audit::verify(&claims) {
                Err(err) => KernelAudit {
                    kernel: name.to_string(),
                    width,
                    pool_calls: 0,
                    tasks: claims.len(),
                    error: Some(err),
                },
                Ok(stats) => {
                    let error = if width <= 1 && stats.calls != 0 {
                        Some(format!(
                            "expected the direct serial path at width 1, \
                             but {} pool call(s) were made",
                            stats.calls
                        ))
                    } else if width > 1 && stats.calls == 0 {
                        Some(
                            "kernel never split at a parallel width; the audit \
                             shape should be over the FLOP threshold"
                                .to_string(),
                        )
                    } else if name.starts_with("matmul") {
                        // Tiled-split claim geometry: every band must start
                        // on an MR-row tile boundary of the output.
                        let band = crate::microkernel::MR * matmul_out_cols;
                        claims.iter().find(|cl| cl.start % band != 0).map(|cl| {
                            format!(
                                "band claim at element {} is not MR-tile-aligned \
                                 (MR = {}, output width {matmul_out_cols})",
                                cl.start,
                                crate::microkernel::MR,
                            )
                        })
                    } else {
                        None
                    };
                    KernelAudit {
                        kernel: name.to_string(),
                        width,
                        pool_calls: stats.calls,
                        tasks: stats.tasks,
                        error,
                    }
                }
            };
            entries.push(entry);
        }
    }
    RaceAuditReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_kernels_split_disjointly_at_all_widths() {
        let report = race_audit();
        assert_eq!(report.entries.len(), 6 * AUDIT_WIDTHS.len());
        assert!(report.is_clean(), "race audit failures:\n{report}");
    }

    #[test]
    fn width_one_takes_the_serial_path() {
        let report = race_audit_at(&[1]);
        for e in &report.entries {
            assert!(e.ok(), "{}: {:?}", e.kernel, e.error);
            assert_eq!(e.pool_calls, 0, "{} split at width 1", e.kernel);
        }
    }

    #[test]
    fn parallel_widths_actually_split() {
        let report = race_audit_at(&[8]);
        for e in &report.entries {
            assert!(e.ok(), "{}: {:?}", e.kernel, e.error);
            assert!(e.pool_calls >= 1, "{} never split at width 8", e.kernel);
            assert!(e.tasks > 1, "{} split into a single task", e.kernel);
        }
    }
}
