//! Elementwise arithmetic, broadcasting, matrix products, and nonlinearities.
//!
//! # Parallel execution and determinism
//!
//! The heavy kernels (`matmul` family, row-wise softmax/log-softmax) split
//! their output into contiguous row blocks and run the blocks on the
//! vendored `parallel` pool when the [`crate::cost`] model says the op is
//! big enough to amortize the scheduling overhead. Non-degenerate matrix
//! products route through the register-blocked, cache-tiled microkernel in
//! [`crate::microkernel`], whose parallel split carves the `MR`-tile grid
//! into `MR`-aligned row bands; skinny or tiny products keep the plain row
//! loops below. On either path each output element is accumulated by
//! exactly one task with the contraction index ascending over the full
//! depth, so results are **bitwise identical** across thread counts and
//! run-to-run. The `*_serial` variants force a single block and exist as
//! the reference point for the equivalence suite and benches.
//!
//! # IEEE semantics
//!
//! The matmul kernels evaluate every `a_ik * b_kj` term — there is no
//! zero-skipping shortcut — so non-finite operands propagate exactly as
//! the mathematical definition (and the `nn::absint` transfer functions)
//! demand: `0.0 * inf` contributes `NaN`, never silently `0`.

use crate::microkernel::{self, Lhs, Rhs};
use crate::{cost, Tensor};

/// Splits the `r`-row output buffer `out` (row width `w` elements) into
/// [`cost::plan_pieces`] contiguous row blocks and runs `f(first_row,
/// block)` for each, on the pool when more than one piece is planned.
///
/// Block geometry depends only on `(r, w, flops)` and the caller's split
/// width — never on pool availability — so outputs are reproducible.
/// Callers must guarantee `r > 0`, `w > 0`, and `out.len() == r * w`.
pub(crate) fn par_row_blocks(
    r: usize,
    w: usize,
    flops: u64,
    out: &mut [f32],
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    let pieces = cost::plan_pieces(flops, r, parallel::current_split());
    if pieces <= 1 {
        f(0, out);
    } else {
        let rows_per = r.div_ceil(pieces);
        parallel::par_chunks_mut(out, rows_per * w, |ci, block| f(ci * rows_per, block));
    }
}

/// `o_block += a_block * b` for a block of output rows; `a_block` holds the
/// matching rows of `a`. Cache-friendly `i-k-j` order, every term evaluated
/// (no zero-skip — `0.0 * inf` must surface as `NaN`). Fallback path for
/// products too skinny or small for the packed microkernel.
fn matmul_rows(a_block: &[f32], b: &[f32], o_block: &mut [f32], k: usize, c: usize) {
    for (a_row, o_row) in a_block.chunks_exact(k).zip(o_block.chunks_exact_mut(c)) {
        for (p, &a_ik) in a_row.iter().enumerate() {
            let b_row = &b[p * c..(p + 1) * c];
            for (o_v, &b_v) in o_row.iter_mut().zip(b_row) {
                *o_v += a_ik * b_v;
            }
        }
    }
}

/// `matmul_tn` rows `[i0, i0 + block_rows)` of the output, fallback path.
/// For each output row the contraction index `p` ascends over the full
/// depth — the same per-element order as the microkernel's generic tile,
/// with every term evaluated.
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    o_block: &mut [f32],
    i0: usize,
    k: usize,
    r: usize,
    c: usize,
) {
    for (di, o_row) in o_block.chunks_exact_mut(c).enumerate() {
        let i = i0 + di;
        for p in 0..k {
            let a_pi = a[p * r + i];
            let b_row = &b[p * c..(p + 1) * c];
            for (o_v, &b_v) in o_row.iter_mut().zip(b_row) {
                *o_v += a_pi * b_v;
            }
        }
    }
}

/// `matmul_nt` for a block of output rows: dot products written straight
/// into the output row slice (no per-element bounds-checked `set`).
fn matmul_nt_rows(a_block: &[f32], b: &[f32], o_block: &mut [f32], k: usize, c: usize) {
    for (a_row, o_row) in a_block.chunks_exact(k).zip(o_block.chunks_exact_mut(c)) {
        for (j, o_v) in o_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&a_v, &b_v) in a_row.iter().zip(b_row) {
                acc += a_v * b_v;
            }
            *o_v = acc;
        }
    }
}

/// In-place softmax of one row. See [`Tensor::softmax_rows`] for the
/// fully-masked-row contract.
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // Fully masked row: no finite logit to normalize against.
        if cfg!(debug_assertions) {
            panic!("softmax_rows: fully masked row (every logit is -inf)");
        }
        row.fill(0.0);
        return;
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// In-place log-softmax of one row. See [`Tensor::log_softmax_rows`] for
/// the fully-masked-row contract (mirrors [`Tensor::softmax_rows`]).
fn log_softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // Fully masked row: `v - max` would be `-inf - -inf = NaN` for
        // every entry. Mirror softmax_row's contract instead of emitting
        // an all-NaN row.
        if cfg!(debug_assertions) {
            panic!("log_softmax_rows: fully masked row (every logit is -inf)");
        }
        row.fill(f32::NEG_INFINITY);
        return;
    }
    let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
    for v in row.iter_mut() {
        *v -= log_sum;
    }
}

/// `out = a (r x k) * b (k x c)` over raw row-major buffers. Zero-fills
/// `out` first, then runs the exact block geometry of [`Tensor::matmul`],
/// so results are bitwise identical to the tensor method. This is the entry
/// point the arena executor uses to run matmuls into planned spans.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert_eq!(a.len(), r * k, "matmul_into: lhs buffer");
    debug_assert_eq!(b.len(), k * c, "matmul_into: rhs buffer");
    debug_assert_eq!(out.len(), r * c, "matmul_into: out buffer");
    out.fill(0.0);
    if r == 0 || k == 0 || c == 0 {
        return;
    }
    if microkernel::takes_micro_path(r, k, c) {
        microkernel::matmul_tiled(Lhs::RowMajor(a), Rhs::RowMajor(b), out, r, k, c);
        return;
    }
    par_row_blocks(r, c, cost::matmul_flops(r, k, c), out, |row0, block| {
        let rows = block.len() / c;
        matmul_rows(&a[row0 * k..(row0 + rows) * k], b, block, k, c);
    });
}

/// `out = a^T (k x r) * b (k x c)` over raw buffers; bitwise identical to
/// [`Tensor::matmul_tn`]. Zero-fills `out` first.
pub fn matmul_tn_into(a: &[f32], b: &[f32], out: &mut [f32], k: usize, r: usize, c: usize) {
    debug_assert_eq!(a.len(), k * r, "matmul_tn_into: lhs buffer");
    debug_assert_eq!(b.len(), k * c, "matmul_tn_into: rhs buffer");
    debug_assert_eq!(out.len(), r * c, "matmul_tn_into: out buffer");
    out.fill(0.0);
    if r == 0 || k == 0 || c == 0 {
        return;
    }
    if microkernel::takes_micro_path(r, k, c) {
        microkernel::matmul_tiled(Lhs::Transposed(a), Rhs::RowMajor(b), out, r, k, c);
        return;
    }
    par_row_blocks(r, c, cost::matmul_flops(r, k, c), out, |row0, block| {
        matmul_tn_rows(a, b, block, row0, k, r, c);
    });
}

/// `out = a (r x k) * b^T (c x k)` over raw buffers; bitwise identical to
/// [`Tensor::matmul_nt`]. Zero-fills `out` first.
pub fn matmul_nt_into(a: &[f32], b: &[f32], out: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert_eq!(a.len(), r * k, "matmul_nt_into: lhs buffer");
    debug_assert_eq!(b.len(), c * k, "matmul_nt_into: rhs buffer");
    debug_assert_eq!(out.len(), r * c, "matmul_nt_into: out buffer");
    out.fill(0.0);
    if r == 0 || k == 0 || c == 0 {
        return;
    }
    if microkernel::takes_micro_path(r, k, c) {
        microkernel::matmul_tiled(Lhs::RowMajor(a), Rhs::Transposed(b), out, r, k, c);
        return;
    }
    par_row_blocks(r, c, cost::matmul_flops(r, k, c), out, |row0, block| {
        let rows = block.len() / c;
        matmul_nt_rows(&a[row0 * k..(row0 + rows) * k], b, block, k, c);
    });
}

/// Row-wise softmax over a raw `r x c` buffer, in place; bitwise identical
/// to [`Tensor::softmax_rows`] (same block geometry, same per-row kernel).
pub fn softmax_rows_inplace(data: &mut [f32], r: usize, c: usize) {
    debug_assert_eq!(data.len(), r * c, "softmax_rows_inplace: buffer");
    if r == 0 || c == 0 {
        return;
    }
    par_row_blocks(r, c, cost::softmax_flops(r, c), data, |_, block| {
        for row in block.chunks_exact_mut(c) {
            softmax_row(row);
        }
    });
}

/// Row-wise log-softmax over a raw `r x c` buffer, in place; bitwise
/// identical to [`Tensor::log_softmax_rows`].
pub fn log_softmax_rows_inplace(data: &mut [f32], r: usize, c: usize) {
    debug_assert_eq!(data.len(), r * c, "log_softmax_rows_inplace: buffer");
    if r == 0 || c == 0 {
        return;
    }
    par_row_blocks(r, c, cost::softmax_flops(r, c), data, |_, block| {
        for row in block.chunks_exact_mut(c) {
            log_softmax_row(row);
        }
    });
}

impl Tensor {
    /// Elementwise sum `self + other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, "mul", |a, b| a * b)
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, "div", |a, b| a / b)
    }

    /// In-place elementwise sum.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// In-place scaled accumulate: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|v| v * k)
    }

    /// Adds `k` to every element.
    pub fn add_scalar(&self, k: f32) -> Tensor {
        self.map(|v| v + k)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.as_slice().iter().map(|&v| f(v)).collect();
        Tensor::from_vec(self.rows(), self.cols(), data).expect("map preserves length")
    }

    /// Applies `f` elementwise over two same-shaped tensors.
    pub fn zip_map(&self, other: &Tensor, opname: &str, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{opname}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(self.rows(), self.cols(), data).expect("zip_map preserves length")
    }

    /// Adds a `1 x c` row vector to every row of an `r x c` tensor.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows(), 1, "add_row_broadcast: rhs must be a row vector");
        assert_eq!(self.cols(), row.cols(), "add_row_broadcast: column mismatch");
        let mut out = self.clone();
        let r = row.as_slice();
        for i in 0..out.rows() {
            for (o, b) in out.row_mut(i).iter_mut().zip(r) {
                *o += b;
            }
        }
        out
    }

    /// Adds an `r x 1` column vector to every column of an `r x c` tensor.
    pub fn add_col_broadcast(&self, col: &Tensor) -> Tensor {
        assert_eq!(col.cols(), 1, "add_col_broadcast: rhs must be a column vector");
        assert_eq!(self.rows(), col.rows(), "add_col_broadcast: row mismatch");
        let mut out = self.clone();
        for i in 0..out.rows() {
            let b = col.get(i, 0);
            for o in out.row_mut(i) {
                *o += b;
            }
        }
        out
    }

    /// Multiplies every row `i` of an `r x c` tensor by scalar `col[i]`.
    pub fn mul_col_broadcast(&self, col: &Tensor) -> Tensor {
        assert_eq!(col.cols(), 1, "mul_col_broadcast: rhs must be a column vector");
        assert_eq!(self.rows(), col.rows(), "mul_col_broadcast: row mismatch");
        let mut out = self.clone();
        for i in 0..out.rows() {
            let b = col.get(i, 0);
            for o in out.row_mut(i) {
                *o *= b;
            }
        }
        out
    }

    /// Matrix product `self (r x k) * other (k x c) -> r x c`.
    ///
    /// Non-degenerate products run the packed, register-blocked
    /// microkernel ([`crate::microkernel`]); skinny or tiny ones use the
    /// cache-friendly `i-k-j` loop over contiguous rows. Large products
    /// split their tile grid across the `parallel` pool (bitwise
    /// identical to [`Tensor::matmul_serial`], see the module docs).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (r, k, c) = (self.rows(), self.cols(), other.cols());
        let mut out = Tensor::zeros(r, c);
        matmul_into(self.as_slice(), other.as_slice(), out.as_mut_slice(), r, k, c);
        out
    }

    /// Single-block reference for [`Tensor::matmul`] (the equivalence suite
    /// and benches compare the pool path against this).
    pub fn matmul_serial(&self, other: &Tensor) -> Tensor {
        parallel::with_threads(1, || self.matmul(other))
    }

    /// `self^T * other`: `(k x r)^T=(r x k)` is avoided by reading columns.
    ///
    /// Computes `transpose(self).matmul(other)` without materializing the
    /// transpose. `self` is `k x r`, `other` is `k x c`, result is `r x c`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows(), other.rows(), "matmul_tn: leading dims differ");
        let (k, r, c) = (self.rows(), self.cols(), other.cols());
        let mut out = Tensor::zeros(r, c);
        matmul_tn_into(self.as_slice(), other.as_slice(), out.as_mut_slice(), k, r, c);
        out
    }

    /// Single-block reference for [`Tensor::matmul_tn`].
    pub fn matmul_tn_serial(&self, other: &Tensor) -> Tensor {
        parallel::with_threads(1, || self.matmul_tn(other))
    }

    /// `self * other^T`: `self` is `r x k`, `other` is `c x k`, result `r x c`.
    ///
    /// Accumulates each dot product directly into the output row (exactly
    /// the element order of `self.matmul(&other.transpose())`).
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols(), other.cols(), "matmul_nt: trailing dims differ");
        let (r, k, c) = (self.rows(), self.cols(), other.rows());
        let mut out = Tensor::zeros(r, c);
        matmul_nt_into(self.as_slice(), other.as_slice(), out.as_mut_slice(), r, k, c);
        out
    }

    /// Single-block reference for [`Tensor::matmul_nt`].
    pub fn matmul_nt_serial(&self, other: &Tensor) -> Tensor {
        parallel::with_threads(1, || self.matmul_nt(other))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = self.shape();
        let mut out = Tensor::zeros(c, r);
        for i in 0..r {
            for j in 0..c {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Dot product of two tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.as_slice().iter().zip(other.as_slice()).map(|(a, b)| a * b).sum()
    }

    /// Frobenius / L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Row-wise softmax: each row is normalized to a probability vector.
    ///
    /// Numerically stabilized by subtracting the row max. Rows may contain
    /// `-inf` entries (masked attention slots), which get probability 0.
    ///
    /// # Contract: fully masked rows
    /// A row whose entries are **all** `-inf` has no valid distribution and
    /// is a caller bug (an attention row where every candidate was masked
    /// out). Debug builds panic on such a row; release builds define the
    /// result as an all-zero row — callers must mask *before* reaching a
    /// state where nothing can be attended to.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        let (r, c) = self.shape();
        softmax_rows_inplace(out.as_mut_slice(), r, c);
        out
    }

    /// Single-block reference for [`Tensor::softmax_rows`].
    pub fn softmax_rows_serial(&self) -> Tensor {
        parallel::with_threads(1, || self.softmax_rows())
    }

    /// Row-wise log-softmax.
    ///
    /// # Contract: fully masked rows
    /// Same contract as [`Tensor::softmax_rows`]: a row whose entries are
    /// **all** `-inf` is a caller bug. Debug builds panic on such a row;
    /// release builds define the result as all `-inf` (the log of the
    /// all-zero distribution `softmax_rows` defines for that case) rather
    /// than the all-NaN row the naive `v - max` rewrite would produce.
    pub fn log_softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        let (r, c) = self.shape();
        log_softmax_rows_inplace(out.as_mut_slice(), r, c);
        out
    }

    /// Single-block reference for [`Tensor::log_softmax_rows`].
    pub fn log_softmax_rows_serial(&self) -> Tensor {
        parallel::with_threads(1, || self.log_softmax_rows())
    }

    /// ReLU nonlinearity.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Leaky ReLU with negative slope `alpha` (the HHG graph attention in the
    /// paper uses `alpha = 0.2`, the GAT default).
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        self.map(|v| if v >= 0.0 { v } else { alpha * v })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// GELU (tanh approximation), the Transformer feed-forward activation.
    pub fn gelu(&self) -> Tensor {
        self.map(gelu_scalar)
    }

    /// Elementwise natural exponential.
    ///
    /// Unbounded inputs overflow to `+inf` around `x > 88.7` in `f32`; the
    /// tape-level lint (`naked-exp`) exists to catch graphs that reach this
    /// kernel without a max-subtraction or an otherwise bounded input.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm (`-inf` at 0, NaN below).
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root (NaN below 0).
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }
}

/// Scalar GELU (tanh approximation).
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of the scalar GELU (tanh approximation).
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let u = SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(rows: &[Vec<f32>]) -> Tensor {
        Tensor::from_rows(rows)
    }

    #[test]
    fn add_sub_mul_div() {
        let a = t(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = t(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        assert_eq!(a.add(&b).as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.mul(&b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(b.div(&a).as_slice(), &[5.0, 3.0, 7.0 / 3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        Tensor::zeros(2, 2).add(&Tensor::zeros(2, 3));
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = t(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]); // 3x2
        let b = t(&[vec![1.0, 0.5, 2.0], vec![0.0, 1.0, 3.0], vec![2.0, 2.0, 1.0]]); // 3x3
        let expected = a.transpose().matmul(&b);
        assert!(a.matmul_tn(&b).allclose(&expected, 1e-6));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]); // 2x3
        let b = t(&[vec![1.0, 0.5, 2.0], vec![0.0, 1.0, 3.0]]); // 2x3
        let expected = a.matmul(&b.transpose());
        assert!(a.matmul_nt(&b).allclose(&expected, 1e-6));
    }

    #[test]
    fn broadcast_add_row() {
        let a = Tensor::zeros(2, 3);
        let row = Tensor::row_vector(&[1.0, 2.0, 3.0]);
        let out = a.add_row_broadcast(&row);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn broadcast_add_col() {
        let a = Tensor::zeros(2, 2);
        let col = Tensor::col_vector(&[1.0, -1.0]);
        let out = a.add_col_broadcast(&col);
        assert_eq!(out.row(0), &[1.0, 1.0]);
        assert_eq!(out.row(1), &[-1.0, -1.0]);
    }

    #[test]
    fn broadcast_mul_col() {
        let a = Tensor::ones(2, 2);
        let col = Tensor::col_vector(&[2.0, 3.0]);
        let out = a.mul_col_broadcast(&col);
        assert_eq!(out.row(0), &[2.0, 2.0]);
        assert_eq!(out.row(1), &[3.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = t(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let a = Tensor::row_vector(&[1000.0, 1000.0]);
        let s = a.softmax_rows();
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let a = Tensor::row_vector(&[0.3, -1.2, 2.0]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for j in 0..3 {
            assert!((ls.get(0, j).exp() - s.get(0, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn activations() {
        let a = Tensor::row_vector(&[-2.0, 0.0, 2.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 2.0]);
        assert_eq!(a.leaky_relu(0.1).as_slice(), &[-0.2, 0.0, 2.0]);
        let s = a.sigmoid();
        assert!((s.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(s.get(0, 0) < 0.5 && s.get(0, 2) > 0.5);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh approximation.
        assert!((gelu_scalar(0.0)).abs() < 1e-6);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 1.9] {
            let eps = 1e-3;
            let num = (gelu_scalar(x + eps) - gelu_scalar(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad_scalar(x) - num).abs() < 1e-3,
                "gelu'({x}) analytic {} vs numeric {num}",
                gelu_grad_scalar(x)
            );
        }
    }

    #[test]
    fn exp_ln_sqrt_elementwise() {
        let a = Tensor::row_vector(&[0.0, 1.0, 4.0]);
        assert_eq!(a.exp().as_slice(), &[1.0, 1.0f32.exp(), 4.0f32.exp()]);
        assert_eq!(a.sqrt().as_slice(), &[0.0, 1.0, 2.0]);
        let e = a.exp().ln();
        assert!(e.allclose(&a, 1e-6), "ln(exp(x)) must round-trip");
        assert_eq!(Tensor::row_vector(&[0.0]).ln().get(0, 0), f32::NEG_INFINITY);
    }

    #[test]
    fn norm_and_dot() {
        let a = Tensor::row_vector(&[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let b = Tensor::row_vector(&[1.0, 2.0]);
        assert_eq!(a.dot(&b), 11.0);
    }

    #[test]
    fn transpose_involution() {
        let a = t(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(1, 3);
        let b = Tensor::row_vector(&[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn matmul_nt_is_exactly_matmul_of_transpose() {
        // Same contraction order (p ascending) on both paths, so the
        // cross-check holds with zero tolerance, not just approximately.
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_normal(13, 9, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(11, 9, 0.0, 1.0, &mut rng);
        assert!(a.matmul_nt(&b).allclose(&a.matmul(&b.transpose()), 0.0));
    }

    #[test]
    fn softmax_keeps_masked_entries_at_zero() {
        let a = Tensor::row_vector(&[2.0, f32::NEG_INFINITY, 0.5]);
        let s = a.softmax_rows();
        assert_eq!(s.get(0, 1), 0.0);
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "fully masked row")]
    fn softmax_panics_on_fully_masked_row_in_debug() {
        Tensor::row_vector(&[f32::NEG_INFINITY, f32::NEG_INFINITY]).softmax_rows();
    }

    fn assert_bitwise_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    /// Shapes chosen so the kernels actually take the pool path with row
    /// counts that do not divide evenly by the split width, plus
    /// degenerate 1xn / nx1 outputs. (37, 96, 80) clears the tiled-path
    /// `MATMUL_PAR_FLOP_THRESHOLD` with a ragged tile grid; (65, 512, 1)
    /// splits on the skinny fallback path; (37, 64, 33) and (8, 64, 64)
    /// run the microkernel serially; (1, 4096, 17) stays on the row loop.
    #[test]
    fn parallel_kernels_bitwise_match_serial_across_widths() {
        let mut rng = StdRng::seed_from_u64(42);
        let cases =
            [(37usize, 96usize, 80usize), (37, 64, 33), (1, 4096, 17), (65, 512, 1), (8, 64, 64)];
        for &(r, k, c) in &cases {
            let a = Tensor::rand_normal(r, k, 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(k, c, 0.0, 1.0, &mut rng);
            let at = a.transpose(); // k x r for matmul_tn
            let bt = b.transpose(); // c x k for matmul_nt
            let logits = Tensor::rand_normal(r, k, 0.0, 1.0, &mut rng);
            for width in [1usize, 2, 8] {
                parallel::with_threads(width, || {
                    assert_bitwise_eq(&a.matmul(&b), &a.matmul_serial(&b), "matmul");
                    assert_bitwise_eq(&at.matmul_tn(&b), &at.matmul_tn_serial(&b), "matmul_tn");
                    assert_bitwise_eq(&a.matmul_nt(&bt), &a.matmul_nt_serial(&bt), "matmul_nt");
                    assert_bitwise_eq(
                        &logits.softmax_rows(),
                        &logits.softmax_rows_serial(),
                        "softmax_rows",
                    );
                    assert_bitwise_eq(
                        &logits.log_softmax_rows(),
                        &logits.log_softmax_rows_serial(),
                        "log_softmax_rows",
                    );
                });
            }
        }
    }

    #[test]
    fn restructured_matmul_tn_matches_historical_p_outer_kernel() {
        // The pre-parallel kernel iterated p in the outer loop; keep a
        // copy here to pin the restructured row-of-output kernel to it
        // bitwise. (The historical kernel's zero-skip was dropped along
        // with the production one's — on IEEE semantics skipping `a == 0`
        // silently loses `0 * inf -> NaN`; this data is zero-free, so the
        // pin covers the arithmetic order either way.)
        fn historical_tn(a: &Tensor, b: &Tensor) -> Tensor {
            let (k, r, c) = (a.rows(), a.cols(), b.cols());
            let mut out = Tensor::zeros(r, c);
            for p in 0..k {
                for i in 0..r {
                    let a_pi = a.get(p, i);
                    for j in 0..c {
                        out.set(i, j, out.get(i, j) + a_pi * b.get(p, j));
                    }
                }
            }
            out
        }
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::rand_normal(19, 7, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(19, 11, 0.0, 1.0, &mut rng);
        assert_bitwise_eq(&a.matmul_tn(&b), &historical_tn(&a, &b), "matmul_tn vs historical");
    }

    /// Regression for the zero-skip bugfix: a zero left operand times a
    /// non-finite right operand must produce `NaN` (`0 * inf` is `NaN` in
    /// IEEE 754), on the fallback row loops and the packed microkernel
    /// alike. The old kernels skipped `a_ik == 0.0` and silently reported
    /// finite results that disagreed with the mathematical definition.
    #[test]
    fn matmul_family_propagates_zero_times_inf_as_nan() {
        // Small shapes: fallback row-loop path.
        let a = t(&[vec![0.0, 1.0], vec![2.0, 3.0]]);
        let b = t(&[vec![f32::INFINITY, 1.0], vec![1.0, 1.0]]);
        let out = a.matmul(&b);
        assert!(out.get(0, 0).is_nan(), "0 * inf must propagate NaN, got {}", out.get(0, 0));
        assert_eq!(out.get(1, 1), 5.0, "finite lanes stay exact");
        let tn = a.transpose().matmul_tn(&b);
        assert!(tn.get(0, 0).is_nan(), "matmul_tn dropped 0 * inf");
        let nt = a.matmul_nt(&b.transpose());
        assert!(nt.get(0, 0).is_nan(), "matmul_nt dropped 0 * inf");

        // NaN operands poison their whole output row/column too.
        let a_nan = t(&[vec![f32::NAN, 0.0], vec![1.0, 1.0]]);
        let ones = Tensor::ones(2, 2);
        assert!(a_nan.matmul(&ones).get(0, 1).is_nan());

        // Micro-path shape (8 x 32 x 16, over MICRO_MIN_FLOPS): an all-zero
        // lhs against a rhs with one inf must put NaN in that column.
        let az = Tensor::zeros(8, 32);
        let mut bz = Tensor::ones(32, 16);
        bz.set(5, 3, f32::INFINITY);
        let mz = az.matmul(&bz);
        for i in 0..8 {
            assert!(mz.get(i, 3).is_nan(), "micro path dropped 0 * inf at row {i}");
            assert_eq!(mz.get(i, 0), 0.0, "finite columns stay zero");
        }
        let mz_tn = az.transpose().matmul_tn(&bz);
        for i in 0..8 {
            assert!(mz_tn.get(i, 3).is_nan(), "tiled matmul_tn dropped 0 * inf at row {i}");
        }
        let mz_nt = az.matmul_nt(&bz.transpose());
        for i in 0..8 {
            assert!(mz_nt.get(i, 3).is_nan(), "tiled matmul_nt dropped 0 * inf at row {i}");
        }
    }

    #[test]
    fn matmul_with_zero_inner_dim_is_zero() {
        let a = Tensor::zeros(3, 0);
        let b = Tensor::zeros(0, 4);
        let out = a.matmul(&b);
        assert_eq!(out.shape(), (3, 4));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "fully masked row")]
    fn log_softmax_panics_on_fully_masked_row_in_debug() {
        Tensor::row_vector(&[f32::NEG_INFINITY, f32::NEG_INFINITY]).log_softmax_rows();
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn log_softmax_defines_fully_masked_row_in_release() {
        let out = Tensor::row_vector(&[f32::NEG_INFINITY, f32::NEG_INFINITY]).log_softmax_rows();
        // log of the all-zero distribution softmax_rows defines: all -inf,
        // never NaN.
        assert!(out.as_slice().iter().all(|&v| v == f32::NEG_INFINITY), "{out:?}");
    }

    #[test]
    fn log_softmax_handles_partially_masked_rows() {
        // A partial mask is legal: masked slots get -inf log-probability,
        // live slots normalize over the unmasked set.
        let out = Tensor::row_vector(&[2.0, f32::NEG_INFINITY, 2.0]).log_softmax_rows();
        assert_eq!(out.get(0, 1), f32::NEG_INFINITY);
        assert!((out.get(0, 0) - 0.5f32.ln()).abs() < 1e-6);
        assert!(!out.get(0, 0).is_nan() && !out.get(0, 2).is_nan());
    }
}
