//! Elementwise arithmetic, broadcasting, matrix products, and nonlinearities.

use crate::Tensor;

impl Tensor {
    /// Elementwise sum `self + other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, "mul", |a, b| a * b)
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, "div", |a, b| a / b)
    }

    /// In-place elementwise sum.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// In-place scaled accumulate: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|v| v * k)
    }

    /// Adds `k` to every element.
    pub fn add_scalar(&self, k: f32) -> Tensor {
        self.map(|v| v + k)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.as_slice().iter().map(|&v| f(v)).collect();
        Tensor::from_vec(self.rows(), self.cols(), data).expect("map preserves length")
    }

    /// Applies `f` elementwise over two same-shaped tensors.
    pub fn zip_map(&self, other: &Tensor, opname: &str, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{opname}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(self.rows(), self.cols(), data).expect("zip_map preserves length")
    }

    /// Adds a `1 x c` row vector to every row of an `r x c` tensor.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows(), 1, "add_row_broadcast: rhs must be a row vector");
        assert_eq!(self.cols(), row.cols(), "add_row_broadcast: column mismatch");
        let mut out = self.clone();
        let r = row.as_slice();
        for i in 0..out.rows() {
            for (o, b) in out.row_mut(i).iter_mut().zip(r) {
                *o += b;
            }
        }
        out
    }

    /// Adds an `r x 1` column vector to every column of an `r x c` tensor.
    pub fn add_col_broadcast(&self, col: &Tensor) -> Tensor {
        assert_eq!(col.cols(), 1, "add_col_broadcast: rhs must be a column vector");
        assert_eq!(self.rows(), col.rows(), "add_col_broadcast: row mismatch");
        let mut out = self.clone();
        for i in 0..out.rows() {
            let b = col.get(i, 0);
            for o in out.row_mut(i) {
                *o += b;
            }
        }
        out
    }

    /// Multiplies every row `i` of an `r x c` tensor by scalar `col[i]`.
    pub fn mul_col_broadcast(&self, col: &Tensor) -> Tensor {
        assert_eq!(col.cols(), 1, "mul_col_broadcast: rhs must be a column vector");
        assert_eq!(self.rows(), col.rows(), "mul_col_broadcast: row mismatch");
        let mut out = self.clone();
        for i in 0..out.rows() {
            let b = col.get(i, 0);
            for o in out.row_mut(i) {
                *o *= b;
            }
        }
        out
    }

    /// Matrix product `self (r x k) * other (k x c) -> r x c`.
    ///
    /// Uses the cache-friendly `i-k-j` loop over contiguous rows.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (r, k, c) = (self.rows(), self.cols(), other.cols());
        let mut out = Tensor::zeros(r, c);
        let a = self.as_slice();
        let b = other.as_slice();
        let o = out.as_mut_slice();
        for i in 0..r {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut o[i * c..(i + 1) * c];
            for (p, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b[p * c..(p + 1) * c];
                for (o_v, &b_v) in o_row.iter_mut().zip(b_row) {
                    *o_v += a_ik * b_v;
                }
            }
        }
        out
    }

    /// `self^T * other`: `(k x r)^T=(r x k)` is avoided by reading columns.
    ///
    /// Computes `transpose(self).matmul(other)` without materializing the
    /// transpose. `self` is `k x r`, `other` is `k x c`, result is `r x c`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows(), other.rows(), "matmul_tn: leading dims differ");
        let (k, r, c) = (self.rows(), self.cols(), other.cols());
        let mut out = Tensor::zeros(r, c);
        let a = self.as_slice();
        let b = other.as_slice();
        let o = out.as_mut_slice();
        for p in 0..k {
            let a_row = &a[p * r..(p + 1) * r];
            let b_row = &b[p * c..(p + 1) * c];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let o_row = &mut o[i * c..(i + 1) * c];
                for (o_v, &b_v) in o_row.iter_mut().zip(b_row) {
                    *o_v += a_pi * b_v;
                }
            }
        }
        out
    }

    /// `self * other^T`: `self` is `r x k`, `other` is `c x k`, result `r x c`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols(), other.cols(), "matmul_nt: trailing dims differ");
        let (r, k, c) = (self.rows(), self.cols(), other.rows());
        let mut out = Tensor::zeros(r, c);
        for i in 0..r {
            let a_row = self.row(i);
            for j in 0..c {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = self.shape();
        let mut out = Tensor::zeros(c, r);
        for i in 0..r {
            for j in 0..c {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Dot product of two tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.as_slice().iter().zip(other.as_slice()).map(|(a, b)| a * b).sum()
    }

    /// Frobenius / L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Row-wise softmax: each row is normalized to a probability vector.
    ///
    /// Numerically stabilized by subtracting the row max.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
            for v in row.iter_mut() {
                *v -= log_sum;
            }
        }
        out
    }

    /// ReLU nonlinearity.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Leaky ReLU with negative slope `alpha` (the HHG graph attention in the
    /// paper uses `alpha = 0.2`, the GAT default).
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        self.map(|v| if v >= 0.0 { v } else { alpha * v })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// GELU (tanh approximation), the Transformer feed-forward activation.
    pub fn gelu(&self) -> Tensor {
        self.map(gelu_scalar)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }
}

/// Scalar GELU (tanh approximation).
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of the scalar GELU (tanh approximation).
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let u = SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: &[Vec<f32>]) -> Tensor {
        Tensor::from_rows(rows)
    }

    #[test]
    fn add_sub_mul_div() {
        let a = t(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = t(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        assert_eq!(a.add(&b).as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.mul(&b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(b.div(&a).as_slice(), &[5.0, 3.0, 7.0 / 3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        Tensor::zeros(2, 2).add(&Tensor::zeros(2, 3));
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = t(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]); // 3x2
        let b = t(&[vec![1.0, 0.5, 2.0], vec![0.0, 1.0, 3.0], vec![2.0, 2.0, 1.0]]); // 3x3
        let expected = a.transpose().matmul(&b);
        assert!(a.matmul_tn(&b).allclose(&expected, 1e-6));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]); // 2x3
        let b = t(&[vec![1.0, 0.5, 2.0], vec![0.0, 1.0, 3.0]]); // 2x3
        let expected = a.matmul(&b.transpose());
        assert!(a.matmul_nt(&b).allclose(&expected, 1e-6));
    }

    #[test]
    fn broadcast_add_row() {
        let a = Tensor::zeros(2, 3);
        let row = Tensor::row_vector(&[1.0, 2.0, 3.0]);
        let out = a.add_row_broadcast(&row);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn broadcast_add_col() {
        let a = Tensor::zeros(2, 2);
        let col = Tensor::col_vector(&[1.0, -1.0]);
        let out = a.add_col_broadcast(&col);
        assert_eq!(out.row(0), &[1.0, 1.0]);
        assert_eq!(out.row(1), &[-1.0, -1.0]);
    }

    #[test]
    fn broadcast_mul_col() {
        let a = Tensor::ones(2, 2);
        let col = Tensor::col_vector(&[2.0, 3.0]);
        let out = a.mul_col_broadcast(&col);
        assert_eq!(out.row(0), &[2.0, 2.0]);
        assert_eq!(out.row(1), &[3.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = t(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let a = Tensor::row_vector(&[1000.0, 1000.0]);
        let s = a.softmax_rows();
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let a = Tensor::row_vector(&[0.3, -1.2, 2.0]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for j in 0..3 {
            assert!((ls.get(0, j).exp() - s.get(0, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn activations() {
        let a = Tensor::row_vector(&[-2.0, 0.0, 2.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 2.0]);
        assert_eq!(a.leaky_relu(0.1).as_slice(), &[-0.2, 0.0, 2.0]);
        let s = a.sigmoid();
        assert!((s.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(s.get(0, 0) < 0.5 && s.get(0, 2) > 0.5);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh approximation.
        assert!((gelu_scalar(0.0)).abs() < 1e-6);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 1.9] {
            let eps = 1e-3;
            let num = (gelu_scalar(x + eps) - gelu_scalar(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad_scalar(x) - num).abs() < 1e-3,
                "gelu'({x}) analytic {} vs numeric {num}",
                gelu_grad_scalar(x)
            );
        }
    }

    #[test]
    fn norm_and_dot() {
        let a = Tensor::row_vector(&[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let b = Tensor::row_vector(&[1.0, 2.0]);
        assert_eq!(a.dot(&b), 11.0);
    }

    #[test]
    fn transpose_involution() {
        let a = t(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(1, 3);
        let b = Tensor::row_vector(&[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }
}
