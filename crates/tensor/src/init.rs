//! Random initialization schemes.
//!
//! All randomness in the workspace flows through caller-provided seeded RNGs
//! so every experiment is reproducible bit-for-bit.

use crate::Tensor;
use rand::Rng;

impl Tensor {
    /// Uniform initialization in `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        for v in t.as_mut_slice() {
            *v = rng.gen_range(lo..hi);
        }
        t
    }

    /// Gaussian initialization with the given mean / standard deviation
    /// (Box-Muller; avoids pulling in `rand_distr`).
    pub fn rand_normal(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        for v in t.as_mut_slice() {
            *v = mean + std * sample_standard_normal(rng);
        }
        t
    }

    /// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::rand_uniform(fan_in, fan_out, -limit, limit, rng)
    }

    /// He/Kaiming normal initialization (for ReLU-family layers).
    pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        let std = (2.0 / fan_in as f32).sqrt();
        Self::rand_normal(fan_in, fan_out, 0.0, std, rng)
    }
}

/// One sample from N(0, 1) via Box-Muller.
fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::EPSILON {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::rand_normal(100, 100, 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var =
            t.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn xavier_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::xavier_uniform(8, 8, &mut rng);
        let limit = (6.0f32 / 16.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= limit));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Tensor::rand_normal(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let b = Tensor::rand_normal(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
