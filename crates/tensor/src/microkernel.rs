//! Register-blocked, cache-tiled matmul microkernels.
//!
//! The matmul family (`matmul`, `matmul_tn`, `matmul_nt`) routes every
//! non-degenerate product through one shared GEMM core:
//!
//! 1. **Pack B** into panel-major layout: the `k x c` right operand is
//!    copied once into `ceil(c / NR)` contiguous panels of `k x NR`
//!    (zero-padded on the ragged last panel), so the microkernel streams
//!    it with unit stride regardless of the original layout (`matmul_nt`
//!    packs from a transposed operand with the same result layout).
//! 2. **Read or pack A** one `MR`-row tile at a time: full tiles of a
//!    row-major left operand are broadcast straight from the operand
//!    (stride `k` between rows — no copy), while `matmul_tn`'s strided
//!    column reads and ragged tail tiles are packed into `k x MR`
//!    interleaved layout (`apack[p * MR + m]`) first.
//! 3. **Microkernel**: an `MR x NR` register block accumulates the full
//!    contraction for one output tile in a fixed loop order (`p`
//!    ascending, one multiply and one add per term) and is written back
//!    exactly once.
//!
//! # Determinism contract
//!
//! Every output element is produced by exactly one register tile, and
//! within a tile the contraction index `p` ascends over the **entire**
//! depth `k` — there is deliberately no `k`-blocking, because splitting
//! the depth would re-associate the per-element sum and break bitwise
//! reproducibility against the single-pass reference order. The parallel
//! split carves the `MR`-tile grid into contiguous row bands (each band a
//! multiple of `MR` rows, except the ragged tail), so tile geometry — and
//! therefore every element's accumulation order — is identical at every
//! `HIERGAT_THREADS` width.
//!
//! Without the `simd` feature the microkernel is plain safe Rust whose
//! `MR x NR` accumulator loop the autovectoriser turns into SIMD; each
//! term is a separately-rounded multiply and add, which keeps the result
//! **bitwise identical to the naive `i-k-j` scalar loop** (the proptests
//! pin this). With `--features simd` on `x86_64`, runtime detection of
//! AVX2+FMA switches the tile loop to `std::arch` fused multiply-adds:
//! the `p`-ascending order per element is unchanged, so results are still
//! bitwise identical across thread widths and run-to-run, but each term
//! is rounded once instead of twice, so values differ from the scalar
//! build by ordinary FMA rounding (the differential suites compare
//! in-build, so both builds stay self-consistent).

use crate::cost;
use std::cell::RefCell;

/// Output rows per register tile.
pub const MR: usize = 6;
/// Output columns per register tile (two 8-lane AVX2 vectors).
pub const NR: usize = 16;

/// Minimum FLOPs before the packed path amortizes its packing passes;
/// below this (or for outputs skinnier than a tile) the plain row loops
/// in `ops` win.
pub const MICRO_MIN_FLOPS: u64 = 8 * 1024;

thread_local! {
    /// Reusable panel-major B buffer (per thread: kernels may run inside
    /// pool tasks, e.g. the scoring fan-out). Steady state never
    /// reallocates once the largest shape has been seen.
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Reusable `k x MR` A-tile buffer, borrowed only inside row bands —
    /// disjoint from `PACK_B`, so a band running on the packing thread
    /// never double-borrows.
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Left operand of the shared GEMM core.
#[derive(Clone, Copy)]
pub(crate) enum Lhs<'a> {
    /// Row-major `r x k` (`matmul`, `matmul_nt`).
    RowMajor(&'a [f32]),
    /// Row-major `k x r`, read as its transpose (`matmul_tn`).
    Transposed(&'a [f32]),
}

/// Right operand of the shared GEMM core.
#[derive(Clone, Copy)]
pub(crate) enum Rhs<'a> {
    /// Row-major `k x c` (`matmul`, `matmul_tn`).
    RowMajor(&'a [f32]),
    /// Row-major `c x k`, read as its transpose (`matmul_nt`).
    Transposed(&'a [f32]),
}

/// `true` when an `r x k x c` product should take the packed microkernel
/// path: at least one full tile of rows, at least half a tile of columns,
/// and enough arithmetic to amortize the packing passes. Public so audits
/// and benches can assert which path a shape takes.
pub fn takes_micro_path(r: usize, k: usize, c: usize) -> bool {
    r >= MR && c >= NR / 2 && cost::matmul_flops(r, k, c) >= MICRO_MIN_FLOPS
}

/// Packs row-major `b` (`k x c`) into panel-major layout: panel `pj`
/// holds columns `[pj * NR, pj * NR + NR)` as `k` rows of `NR` values,
/// zero-padded past column `c`.
fn pack_b_row_major(b: &[f32], k: usize, c: usize, buf: &mut [f32]) {
    for (pj, panel) in buf.chunks_exact_mut(k * NR).enumerate() {
        let j0 = pj * NR;
        let nr = NR.min(c - j0);
        for (dst, src_row) in panel.chunks_exact_mut(NR).zip(b.chunks_exact(c)) {
            dst[..nr].copy_from_slice(&src_row[j0..j0 + nr]);
        }
    }
}

/// Packs `b` given as row-major `c x k` (the `matmul_nt` right operand)
/// into the same panel-major layout as [`pack_b_row_major`].
fn pack_b_transposed(b: &[f32], k: usize, c: usize, buf: &mut [f32]) {
    for (pj, panel) in buf.chunks_exact_mut(k * NR).enumerate() {
        let j0 = pj * NR;
        let nr = NR.min(c - j0);
        for (j, brow) in b[j0 * k..(j0 + nr) * k].chunks_exact(k).enumerate() {
            for (p, &v) in brow.iter().enumerate() {
                panel[p * NR + j] = v;
            }
        }
    }
}

/// Packs `mr` rows of row-major `a` (`r x k`) starting at absolute row
/// `i0` into interleaved `apack[p * MR + m]` layout, zero-padding rows
/// `mr..MR` (defensive: the register tiles only compute `mr` rows, so
/// padded lanes are never read).
fn pack_a_row_major(a: &[f32], k: usize, i0: usize, mr: usize, buf: &mut [f32]) {
    for (m, arow) in a[i0 * k..(i0 + mr) * k].chunks_exact(k).enumerate() {
        for (p, &v) in arow.iter().enumerate() {
            buf[p * MR + m] = v;
        }
    }
    if mr < MR {
        for chunk in buf.chunks_exact_mut(MR) {
            chunk[mr..].fill(0.0);
        }
    }
}

/// Packs `mr` columns of row-major `a` (`k x r`, the `matmul_tn` left
/// operand) starting at column `i0` into the same interleaved layout as
/// [`pack_a_row_major`].
fn pack_a_transposed(a: &[f32], r: usize, i0: usize, mr: usize, buf: &mut [f32]) {
    for (p, arow) in a.chunks_exact(r).enumerate() {
        buf[p * MR..p * MR + mr].copy_from_slice(&arow[i0..i0 + mr]);
    }
    if mr < MR {
        for chunk in buf.chunks_exact_mut(MR) {
            chunk[mr..].fill(0.0);
        }
    }
}

/// How one `MR`-row A tile is read inside the register tile: `a(p, m) =
/// data[m * row_stride + p * col_stride]`.
///
/// Full tiles of a row-major left operand are read **in place**
/// (`row_stride = k`, `col_stride = 1`) — no packing pass at all; packed
/// tiles (transposed operands and ragged tails, zero-padded) use the
/// interleaved layout (`row_stride = 1`, `col_stride = MR`). Only the
/// addressing differs — every element still sees one multiply and one
/// add per term with `p` ascending, so both layouts produce bitwise
/// identical results.
#[derive(Clone, Copy)]
struct ATile<'a> {
    data: &'a [f32],
    row_stride: usize,
    col_stride: usize,
}

impl<'a> ATile<'a> {
    fn packed(buf: &'a [f32]) -> Self {
        Self { data: buf, row_stride: 1, col_stride: MR }
    }

    fn in_place(a: &'a [f32], i0: usize, k: usize) -> Self {
        Self { data: &a[i0 * k..], row_stride: k, col_stride: 1 }
    }
}

/// Portable `MR x NR` register tile, writing each output row to
/// `out[m * out_stride + ..nr]`. One output row at a time: only one
/// `NR`-wide accumulator (4 SSE registers at the x86-64 baseline) is
/// live per pass, so the autovectorised loop never spills — the full
/// `MR x NR` block would need more vector registers than the baseline
/// ISA has. The B panel is re-streamed per row but stays L1-resident
/// (`k x NR x 4` bytes). One multiply and one add per term, `p`
/// ascending per element — bitwise identical to the naive scalar loop.
#[inline]
fn micro_tile_generic(
    a: ATile<'_>,
    bpanel: &[f32],
    out: &mut [f32],
    out_stride: usize,
    mr: usize,
    nr: usize,
) {
    for m in 0..mr {
        let mut acc = [0.0f32; NR];
        for (p, bv) in bpanel.chunks_exact(NR).enumerate() {
            let av = a.data[m * a.row_stride + p * a.col_stride];
            for (o, &b) in acc.iter_mut().zip(bv) {
                *o += av * b;
            }
        }
        let start = m * out_stride;
        out[start..start + nr].copy_from_slice(&acc[..nr]);
    }
}

/// AVX2+FMA `MR x NR` register tile: same `p`-ascending order per
/// element as [`micro_tile_generic`], but each term is one fused
/// multiply-add (single rounding). Full tiles (`mr == MR`, `nr == NR`)
/// store the accumulator registers straight into the output rows;
/// ragged tiles stage through a stack buffer.
///
/// # Safety
/// Callers must have verified at runtime that the CPU supports AVX2 and
/// FMA (see [`simd_active`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_tile_avx2(
    a: ATile<'_>,
    bpanel: &[f32],
    out: &mut [f32],
    out_stride: usize,
    mr: usize,
    nr: usize,
) {
    use std::arch::x86_64::{
        __m256, _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    let k = bpanel.len() / NR;
    let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
    let ap = a.data.as_ptr();
    let (rs, cs) = (a.row_stride, a.col_stride);
    let bp = bpanel.as_ptr();
    // Two contraction steps per iteration to halve loop overhead; within
    // each element the `p` order is still strictly ascending.
    let mut p = 0;
    while p + 2 <= k {
        let b0 = _mm256_loadu_ps(bp.add(p * NR));
        let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
        for (m, cm) in c.iter_mut().enumerate().take(mr) {
            let av = _mm256_broadcast_ss(&*ap.add(m * rs + p * cs));
            cm[0] = _mm256_fmadd_ps(av, b0, cm[0]);
            cm[1] = _mm256_fmadd_ps(av, b1, cm[1]);
        }
        let b0 = _mm256_loadu_ps(bp.add((p + 1) * NR));
        let b1 = _mm256_loadu_ps(bp.add((p + 1) * NR + 8));
        for (m, cm) in c.iter_mut().enumerate().take(mr) {
            let av = _mm256_broadcast_ss(&*ap.add(m * rs + (p + 1) * cs));
            cm[0] = _mm256_fmadd_ps(av, b0, cm[0]);
            cm[1] = _mm256_fmadd_ps(av, b1, cm[1]);
        }
        p += 2;
    }
    if p < k {
        let b0 = _mm256_loadu_ps(bp.add(p * NR));
        let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
        for (m, cm) in c.iter_mut().enumerate().take(mr) {
            let av = _mm256_broadcast_ss(&*ap.add(m * rs + p * cs));
            cm[0] = _mm256_fmadd_ps(av, b0, cm[0]);
            cm[1] = _mm256_fmadd_ps(av, b1, cm[1]);
        }
    }
    if nr == NR {
        for (m, cm) in c.iter().enumerate().take(mr) {
            let dst = out.as_mut_ptr().add(m * out_stride);
            _mm256_storeu_ps(dst, cm[0]);
            _mm256_storeu_ps(dst.add(8), cm[1]);
        }
    } else {
        let mut stage = [0.0f32; NR];
        for (m, cm) in c.iter().enumerate().take(mr) {
            _mm256_storeu_ps(stage.as_mut_ptr(), cm[0]);
            _mm256_storeu_ps(stage.as_mut_ptr().add(8), cm[1]);
            let start = m * out_stride;
            out[start..start + nr].copy_from_slice(&stage[..nr]);
        }
    }
}

/// `true` when the intrinsics tile is compiled in **and** the CPU
/// supports it (checked once per process).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn simd_active() -> bool {
    static AVX2_FMA: std::sync::LazyLock<bool> = std::sync::LazyLock::new(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    });
    *AVX2_FMA
}

/// Runs one register tile, dispatching to the intrinsics path when it is
/// compiled in and supported. Writes `mr` rows of `nr` valid lanes into
/// `out` at `out_stride`-element row pitch.
#[inline]
fn micro_tile(
    a: ATile<'_>,
    bpanel: &[f32],
    out: &mut [f32],
    out_stride: usize,
    mr: usize,
    nr: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2+FMA support at runtime.
        unsafe { micro_tile_avx2(a, bpanel, out, out_stride, mr, nr) };
        return;
    }
    micro_tile_generic(a, bpanel, out, out_stride, mr, nr);
}

/// Computes one contiguous band of output rows (`band`, starting at
/// absolute row `row0`): reads each `MR`-row A tile in place when it can
/// (row-major operand, full tile) or packs it otherwise, then runs the
/// register tile over every B panel, writing each output element exactly
/// once.
fn row_band(
    a: Lhs<'_>,
    r: usize,
    bpack: &[f32],
    row0: usize,
    band: &mut [f32],
    k: usize,
    c: usize,
) {
    let rows = band.len() / c;
    PACK_A.with(|cell| {
        let mut abuf = cell.borrow_mut();
        abuf.clear();
        abuf.resize(k * MR, 0.0);
        let mut m0 = 0;
        while m0 < rows {
            let mr = MR.min(rows - m0);
            let atile = match a {
                Lhs::RowMajor(av) if mr == MR => ATile::in_place(av, row0 + m0, k),
                Lhs::RowMajor(av) => {
                    pack_a_row_major(av, k, row0 + m0, mr, &mut abuf);
                    ATile::packed(&abuf)
                }
                Lhs::Transposed(av) => {
                    pack_a_transposed(av, r, row0 + m0, mr, &mut abuf);
                    ATile::packed(&abuf)
                }
            };
            for (pj, bpanel) in bpack.chunks_exact(k * NR).enumerate() {
                let j0 = pj * NR;
                let nr = NR.min(c - j0);
                micro_tile(atile, bpanel, &mut band[m0 * c + j0..], c, mr, nr);
            }
            m0 += MR;
        }
    });
}

/// Packed, tiled `out = A * B` over raw buffers (`r x k` times `k x c`);
/// operand layouts select the `matmul` / `matmul_tn` / `matmul_nt`
/// variants. Callers guarantee `takes_micro_path(r, k, c)` and
/// `out.len() == r * c`.
///
/// B is packed once on the calling thread; the tile grid is then carved
/// into contiguous `MR`-aligned row bands sized by
/// [`cost::plan_matmul_pieces`] and fanned out over the pool (band
/// geometry depends only on shape and split width, never on pool
/// availability).
pub(crate) fn matmul_tiled(a: Lhs<'_>, b: Rhs<'_>, out: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert!(takes_micro_path(r, k, c), "matmul_tiled: caller must gate on takes_micro_path");
    let panels = c.div_ceil(NR);
    PACK_B.with(|cell| {
        let mut bbuf = cell.borrow_mut();
        bbuf.clear();
        bbuf.resize(panels * k * NR, 0.0);
        match b {
            Rhs::RowMajor(bv) => pack_b_row_major(bv, k, c, &mut bbuf),
            Rhs::Transposed(bv) => pack_b_transposed(bv, k, c, &mut bbuf),
        }
        let bpack: &[f32] = &bbuf;
        let tiles = r.div_ceil(MR);
        let pieces =
            cost::plan_matmul_pieces(cost::matmul_flops(r, k, c), tiles, parallel::current_split());
        if pieces <= 1 {
            row_band(a, r, bpack, 0, out, k, c);
        } else {
            let band_rows = tiles.div_ceil(pieces) * MR;
            parallel::par_chunks_mut(out, band_rows * c, |ci, band| {
                row_band(a, r, bpack, ci * band_rows, band, k, c);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_path_gate() {
        // 256^3 and the attention shapes qualify.
        assert!(takes_micro_path(256, 256, 256));
        assert!(takes_micro_path(128, 64, 128));
        // Fewer rows than a tile, skinnier than half a tile, or too few
        // FLOPs fall back to the row loops.
        assert!(!takes_micro_path(5, 4096, 64));
        assert!(!takes_micro_path(64, 4096, 7));
        assert!(!takes_micro_path(6, 8, 8));
        assert!(!takes_micro_path(64, 0, 64));
    }

    #[test]
    fn b_packing_layouts_agree() {
        // Packing k x c row-major and its c x k transpose must produce
        // identical panels.
        let (k, c) = (5, 19);
        let b: Vec<f32> = (0..k * c).map(|i| i as f32).collect();
        let mut bt = vec![0.0; k * c];
        for p in 0..k {
            for j in 0..c {
                bt[j * k + p] = b[p * c + j];
            }
        }
        // Both packers only write valid lanes; the caller pre-zeroes the
        // buffer, which is what pads the ragged last panel.
        let panels = c.div_ceil(NR);
        let mut packed = vec![0.0; panels * k * NR];
        let mut packed_t = vec![0.0; panels * k * NR];
        pack_b_row_major(&b, k, c, &mut packed);
        pack_b_transposed(&bt, k, c, &mut packed_t);
        assert_eq!(packed, packed_t);
        // Spot-check layout: element (p=2, j=17) lives in panel 1.
        assert_eq!(packed[k * NR + 2 * NR + 1], b[2 * c + 17]);
    }

    #[test]
    fn a_packing_layouts_agree_and_pad() {
        let (r, k) = (7, 4);
        let a: Vec<f32> = (0..r * k).map(|i| i as f32 + 1.0).collect();
        let mut at = vec![0.0; r * k];
        for i in 0..r {
            for p in 0..k {
                at[p * r + i] = a[i * k + p];
            }
        }
        let mut buf = vec![9.0; k * MR];
        let mut buf_t = vec![9.0; k * MR];
        // Ragged tail tile: rows 6..7 (mr = 1).
        pack_a_row_major(&a, k, 6, 1, &mut buf);
        pack_a_transposed(&at, r, 6, 1, &mut buf_t);
        assert_eq!(buf, buf_t);
        for (p, chunk) in buf.chunks_exact(MR).enumerate() {
            assert_eq!(chunk[0], a[6 * k + p]);
            assert!(chunk[1..].iter().all(|&v| v == 0.0), "tail rows must be zero-padded");
        }
    }
}
