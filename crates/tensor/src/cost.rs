//! Op-level FLOP and memory cost model.
//!
//! One set of formulas serves two consumers that must agree:
//!
//! * the kernels in this crate, which consult [`plan_pieces`] to decide
//!   per call whether a parallel row split pays for its scheduling
//!   overhead, and
//! * the static tape analyzer in `hiergat-nn`, which sums the same
//!   estimates over a shape-only graph to report per-model cost budgets
//!   (`hiergat analyze`, training preflight, bench harnesses).
//!
//! Conventions: one fused multiply-add counts as 2 FLOPs; transcendental
//! calls (`exp`, `tanh`, `ln`) count as [`TRANSCENDENTAL_FLOPS`] each;
//! pure data movement (transpose, concat, slice, gather) counts as 0 FLOPs
//! but still contributes output bytes. All byte counts assume `f32`.

/// FLOPs charged per transcendental call (`exp`, `ln`, `tanh`, `sqrt`).
pub const TRANSCENDENTAL_FLOPS: u64 = 8;

/// Minimum FLOPs before a kernel considers a parallel split. Below this the
/// fixed cost of publishing a pool job (~a few microseconds) exceeds the
/// kernel runtime.
pub const PAR_FLOP_THRESHOLD: u64 = 64 * 1024;

/// Minimum FLOPs before the **packed microkernel** matmul path considers a
/// parallel tile split. The tiled kernel retires arithmetic several times
/// faster than the row loops the generic [`PAR_FLOP_THRESHOLD`] was
/// calibrated for (~60 vs ~15 GFLOP/s on an AVX2 core), so the same
/// few-microsecond job-publishing cost only amortizes at a proportionally
/// larger product.
pub const MATMUL_PAR_FLOP_THRESHOLD: u64 = 512 * 1024;

/// FLOPs of an `r x k` by `k x c` matrix product (also `matmul_tn` /
/// `matmul_nt` after mapping their operand shapes to the same triple).
pub fn matmul_flops(r: usize, k: usize, c: usize) -> u64 {
    2 * r as u64 * k as u64 * c as u64
}

/// Bytes touched by a matmul: both operands plus the output, one pass each.
pub fn matmul_bytes(r: usize, k: usize, c: usize) -> u64 {
    4 * (r as u64 * k as u64 + k as u64 * c as u64 + r as u64 * c as u64)
}

/// FLOPs of one elementwise pass over `len` values at `per_elem` FLOPs.
pub fn elementwise_flops(len: usize, per_elem: u64) -> u64 {
    len as u64 * per_elem
}

/// FLOPs of a row-wise softmax over an `r x c` tensor: max, subtract,
/// `exp`, sum, divide per element.
pub fn softmax_flops(r: usize, c: usize) -> u64 {
    r as u64 * c as u64 * (4 + TRANSCENDENTAL_FLOPS)
}

/// FLOPs of per-row mean/variance statistics over an `r x c` tensor.
pub fn row_moments_flops(r: usize, c: usize) -> u64 {
    // mean: c adds; variance: subtract, square, add per element.
    r as u64 * (4 * c as u64 + 2)
}

/// FLOPs of a fused layer-norm forward over an `r x c` tensor (statistics
/// plus the normalize-scale-shift pass).
pub fn layer_norm_flops(r: usize, c: usize) -> u64 {
    row_moments_flops(r, c) + r as u64 * (TRANSCENDENTAL_FLOPS + 4 * c as u64)
}

/// `true` when `flops` is large enough that a parallel split is expected to
/// win over the serial loop.
pub fn worth_parallelizing(flops: u64) -> bool {
    flops >= PAR_FLOP_THRESHOLD
}

/// Number of row-granular pieces a kernel should split into, given the
/// op's FLOP estimate, its row count, and the caller's split width
/// (`parallel::current_split()`). Returns 1 for "stay serial".
///
/// The decision depends only on shape and requested width — never on pool
/// availability — so task geometry (and therefore bitwise output) is
/// reproducible run-to-run.
pub fn plan_pieces(flops: u64, rows: usize, split: usize) -> usize {
    if split <= 1 || rows <= 1 || !worth_parallelizing(flops) {
        1
    } else {
        split.min(rows)
    }
}

/// Number of row-**band** pieces the tiled matmul path should split its
/// `MR`-tile grid into, given the product's FLOP estimate, its tile count
/// (`ceil(rows / MR)`), and the caller's split width. Returns 1 for "stay
/// serial".
///
/// Same reproducibility rule as [`plan_pieces`] — the decision depends
/// only on shape and requested width — but gated on the stricter
/// [`MATMUL_PAR_FLOP_THRESHOLD`], because the microkernel finishes small
/// products before a pool job would even launch.
pub fn plan_matmul_pieces(flops: u64, tiles: usize, split: usize) -> usize {
    if split <= 1 || tiles <= 1 || flops < MATMUL_PAR_FLOP_THRESHOLD {
        1
    } else {
        split.min(tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_is_two_mnk() {
        assert_eq!(matmul_flops(256, 256, 256), 2 * 256 * 256 * 256);
        assert_eq!(matmul_flops(1, 5, 7), 70);
        assert_eq!(matmul_flops(0, 5, 7), 0);
    }

    #[test]
    fn small_ops_stay_serial() {
        assert_eq!(plan_pieces(matmul_flops(4, 4, 4), 4, 8), 1);
        assert_eq!(plan_pieces(matmul_flops(256, 256, 256), 256, 1), 1);
        assert_eq!(plan_pieces(matmul_flops(256, 256, 256), 1, 8), 1);
    }

    #[test]
    fn big_ops_split_to_min_of_rows_and_width() {
        assert_eq!(plan_pieces(matmul_flops(256, 256, 256), 256, 8), 8);
        assert_eq!(plan_pieces(matmul_flops(3, 4096, 64), 3, 8), 3);
    }

    #[test]
    fn tiled_matmul_needs_a_bigger_product_to_split() {
        // 156K FLOPs splits under the generic threshold but stays serial
        // on the tiled path; 256^3 splits on both.
        let small = matmul_flops(37, 64, 33);
        assert!(worth_parallelizing(small));
        assert_eq!(plan_matmul_pieces(small, 7, 8), 1);
        let big = matmul_flops(256, 256, 256);
        assert_eq!(plan_matmul_pieces(big, 43, 8), 8);
        assert_eq!(plan_matmul_pieces(big, 3, 8), 3);
        assert_eq!(plan_matmul_pieces(big, 43, 1), 1);
        assert_eq!(plan_matmul_pieces(big, 1, 8), 1);
    }

    #[test]
    fn byte_model_counts_all_three_operands() {
        assert_eq!(matmul_bytes(2, 3, 4), 4 * (6 + 12 + 8));
    }
}
