//! Property-based tests over the tensor kernels.

use crate::Tensor;
use proptest::prelude::*;

/// Naive `i-k-j` reference matmul: one separately-rounded multiply and add
/// per term, contraction index ascending, no packing, no skipping. This is
/// the semantic ground truth the microkernel is pinned against.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (r, k, c) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(r, c);
    for i in 0..r {
        for p in 0..k {
            let a_ik = a.get(i, p);
            for j in 0..c {
                out.set(i, j, out.get(i, j) + a_ik * b.get(p, j));
            }
        }
    }
    out
}

/// Portable builds must match the naive reference **bitwise** (identical
/// per-element operation order). The `simd` build fuses each
/// multiply-add, so every term is rounded once instead of twice; the
/// result stays within ordinary accumulated-rounding distance of the
/// reference (inputs here are bounded by the strategies).
fn matches_naive(out: &Tensor, reference: &Tensor) -> bool {
    if cfg!(feature = "simd") {
        out.shape() == reference.shape()
            && out
                .as_slice()
                .iter()
                .zip(reference.as_slice())
                .all(|(x, y)| (x - y).abs() <= 1e-2 + 1e-4 * y.abs())
    } else {
        bits_eq(out, reference)
    }
}

/// Strategy: a tensor with dims in `[1, max_dim]` and values in [-10, 10].
fn arb_tensor(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(r, c, data).expect("sized"))
    })
}

/// `true` when `a` and `b` match element-for-element at the bit level (the
/// determinism guarantee of the parallel kernels, stronger than `allclose`).
fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Strategy: a matmul pair whose FLOP count straddles the parallel
/// threshold (`k` is large while `r`/`c` stay small and odd-ish), so the
/// equivalence properties exercise both the serial branch and genuine
/// multi-piece pool splits, including 1xn and nx1 outputs.
fn arb_wide_matmul_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..8, 64usize..257, 1usize..8).prop_flat_map(|(r, k, c)| {
        (
            proptest::collection::vec(-5.0f32..5.0, r * k),
            proptest::collection::vec(-5.0f32..5.0, k * c),
        )
            .prop_map(move |(a, b)| {
                (
                    Tensor::from_vec(r, k, a).expect("sized"),
                    Tensor::from_vec(k, c, b).expect("sized"),
                )
            })
    })
}

/// Strategy: a matmul pair at adversarial shapes for the tiled path —
/// row/column counts straddling the `MR`/`NR` tile sizes (including exact
/// multiples and off-by-one ragged tails), tall/skinny outputs, and `k`
/// down to 0. Values include exact zeros so the no-zero-skip semantics are
/// exercised, not just generic floats.
fn arb_tiled_matmul_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    // Element strategy mixes exact zeros in with generic floats so the
    // no-zero-skip semantics get real coverage, not just generic data.
    fn val() -> impl Strategy<Value = f32> {
        prop_oneof![Just(0.0f32), -4.0f32..4.0]
    }
    let dim_r = prop_oneof![Just(1usize), Just(5), Just(6), Just(7), Just(12), 1usize..40];
    let dim_c = prop_oneof![Just(1usize), Just(8), Just(15), Just(16), Just(17), 1usize..40];
    let dim_k = prop_oneof![Just(0usize), Just(1), 1usize..128];
    (dim_r, dim_k, dim_c).prop_flat_map(move |(r, k, c)| {
        (proptest::collection::vec(val(), r * k), proptest::collection::vec(val(), k * c)).prop_map(
            move |(a, b)| {
                (
                    Tensor::from_vec(r, k, a).expect("sized"),
                    Tensor::from_vec(k, c, b).expect("sized"),
                )
            },
        )
    })
}

/// Strategy: a pair of tensors with matching inner dims for matmul.
fn arb_matmul_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(r, k, c)| {
        (
            proptest::collection::vec(-5.0f32..5.0, r * k),
            proptest::collection::vec(-5.0f32..5.0, k * c),
        )
            .prop_map(move |(a, b)| {
                (
                    Tensor::from_vec(r, k, a).expect("sized"),
                    Tensor::from_vec(k, c, b).expect("sized"),
                )
            })
    })
}

proptest! {
    #[test]
    fn add_commutes(t in arb_tensor(6)) {
        let u = t.map(|v| v * 0.5 - 1.0);
        prop_assert!(t.add(&u).allclose(&u.add(&t), 1e-6));
    }

    #[test]
    fn add_zero_is_identity(t in arb_tensor(6)) {
        let z = Tensor::zeros(t.rows(), t.cols());
        prop_assert!(t.add(&z).allclose(&t, 0.0));
    }

    #[test]
    fn scale_distributes_over_add(t in arb_tensor(5)) {
        let u = t.map(|v| v + 1.0);
        let lhs = t.add(&u).scale(2.0);
        let rhs = t.scale(2.0).add(&u.scale(2.0));
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn transpose_is_involution(t in arb_tensor(6)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in arb_matmul_pair()) {
        // (A B)^T = B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn matmul_tn_nt_agree_with_naive((a, b) in arb_matmul_pair()) {
        // a: r x k, b: k x c.
        let tn = a.transpose().matmul_tn(&b); // (k x r)^T b = a b... sanity below
        let naive = a.matmul(&b);
        prop_assert!(tn.allclose(&naive, 1e-3));
        let nt = a.matmul_nt(&b.transpose());
        prop_assert!(nt.allclose(&naive, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(t in arb_tensor(6)) {
        let s = t.softmax_rows();
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn softmax_invariant_to_shift(t in arb_tensor(5)) {
        let shifted = t.add_scalar(3.7);
        prop_assert!(t.softmax_rows().allclose(&shifted.softmax_rows(), 1e-4));
    }

    #[test]
    fn sum_rows_then_sum_equals_sum(t in arb_tensor(6)) {
        prop_assert!((t.sum_rows().sum() - t.sum()).abs() < 1e-3);
        prop_assert!((t.sum_cols().sum() - t.sum()).abs() < 1e-3);
    }

    #[test]
    fn concat_then_slice_roundtrip(t in arb_tensor(5)) {
        let u = t.map(|v| v + 2.0);
        let cat = Tensor::concat_cols(&[&t, &u]);
        prop_assert!(cat.slice_cols(0, t.cols()).allclose(&t, 0.0));
        prop_assert!(cat.slice_cols(t.cols(), u.cols()).allclose(&u, 0.0));
        let vcat = Tensor::concat_rows(&[&t, &u]);
        prop_assert!(vcat.slice_rows(t.rows(), u.rows()).allclose(&u, 0.0));
    }

    #[test]
    fn gather_rows_picks_rows(t in arb_tensor(6), seed in 0usize..100) {
        let idx = seed % t.rows();
        let g = t.gather_rows(&[idx]);
        prop_assert_eq!(g.row(0), t.row(idx));
    }

    #[test]
    fn relu_is_idempotent(t in arb_tensor(6)) {
        let r = t.relu();
        prop_assert!(r.relu().allclose(&r, 0.0));
        prop_assert!(r.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn parallel_matmul_family_is_bitwise_serial((a, b) in arb_wide_matmul_pair()) {
        let mm_ref = a.matmul_serial(&b);
        let at = a.transpose();
        let bt = b.transpose();
        let tn_ref = at.matmul_tn_serial(&b);
        let nt_ref = a.matmul_nt_serial(&bt);
        for width in [1usize, 2, 8] {
            let (mm, tn, nt) = parallel::with_threads(width, || {
                (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt))
            });
            prop_assert!(bits_eq(&mm, &mm_ref), "matmul at width {width}");
            prop_assert!(bits_eq(&tn, &tn_ref), "matmul_tn at width {width}");
            prop_assert!(bits_eq(&nt, &nt_ref), "matmul_nt at width {width}");
        }
    }

    #[test]
    fn microkernel_matches_naive_reference((a, b) in arb_tiled_matmul_pair()) {
        let reference = naive_matmul(&a, &b);
        prop_assert!(matches_naive(&a.matmul(&b), &reference), "matmul vs naive i-k-j");
        let at = a.transpose();
        let bt = b.transpose();
        prop_assert!(matches_naive(&at.matmul_tn(&b), &reference), "matmul_tn vs naive i-k-j");
        prop_assert!(matches_naive(&a.matmul_nt(&bt), &reference), "matmul_nt vs naive i-k-j");
    }

    #[test]
    fn microkernel_bitwise_across_widths((a, b) in arb_tiled_matmul_pair()) {
        let mm_ref = a.matmul_serial(&b);
        let at = a.transpose();
        let bt = b.transpose();
        let tn_ref = at.matmul_tn_serial(&b);
        let nt_ref = a.matmul_nt_serial(&bt);
        for width in [1usize, 2, 8] {
            let (mm, tn, nt) = parallel::with_threads(width, || {
                (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt))
            });
            prop_assert!(bits_eq(&mm, &mm_ref), "tiled matmul at width {width}");
            prop_assert!(bits_eq(&tn, &tn_ref), "tiled matmul_tn at width {width}");
            prop_assert!(bits_eq(&nt, &nt_ref), "tiled matmul_nt at width {width}");
        }
    }

    #[test]
    fn parallel_rowwise_kernels_are_bitwise_serial(t in arb_tensor(48)) {
        let sm_ref = t.softmax_rows_serial();
        let lsm_ref = t.log_softmax_rows_serial();
        let (m_ref, v_ref) = t.row_moments_serial();
        for width in [1usize, 2, 8] {
            let (sm, lsm, m, v) = parallel::with_threads(width, || {
                let (m, v) = t.row_moments();
                (t.softmax_rows(), t.log_softmax_rows(), m, v)
            });
            prop_assert!(bits_eq(&sm, &sm_ref), "softmax at width {width}");
            prop_assert!(bits_eq(&lsm, &lsm_ref), "log_softmax at width {width}");
            prop_assert!(bits_eq(&m, &m_ref) && bits_eq(&v, &v_ref), "moments at width {width}");
        }
    }
}

/// Pinned adversarial shapes (deterministic complement to the proptest
/// strategies): degenerate outputs, exact tile multiples, ragged tails on
/// both tile axes, tall/skinny products, and a product big enough to
/// genuinely split the tile grid at parallel widths.
#[test]
fn microkernel_adversarial_shapes_match_naive_at_all_widths() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0x7113);
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 0, 4),    // k = 0: all-zero output
        (1, 300, 64), // single row, wide contraction
        (13, 300, 1), // single column
        (6, 32, 16),  // exactly one band of full tiles
        (12, 48, 32), // exact multiples of MR x NR
        (7, 64, 17),  // ragged on both tile axes
        (5, 128, 33), // fewer rows than one tile
        (300, 16, 9), // tall and skinny
        (37, 96, 80), // splits the tile grid at widths > 1
    ];
    for &(r, k, c) in shapes {
        // rand_normal can't produce 0-dim tensors, so build from raw vecs
        // (with a sprinkling of exact zeros for the no-skip semantics).
        let mut draw = |n: usize| -> Vec<f32> {
            use rand::Rng;
            (0..n).map(|i| if i % 11 == 3 { 0.0 } else { rng.gen_range(-2.0..2.0) }).collect()
        };
        let a = Tensor::from_vec(r, k, draw(r * k)).expect("sized");
        let b = Tensor::from_vec(k, c, draw(k * c)).expect("sized");
        let reference = naive_matmul(&a, &b);
        let (at, bt) = (a.transpose(), b.transpose());
        for width in [1usize, 2, 8] {
            parallel::with_threads(width, || {
                assert!(
                    matches_naive(&a.matmul(&b), &reference),
                    "matmul {r}x{k}x{c} at width {width}"
                );
                assert!(
                    matches_naive(&at.matmul_tn(&b), &reference),
                    "matmul_tn {r}x{k}x{c} at width {width}"
                );
                assert!(
                    matches_naive(&a.matmul_nt(&bt), &reference),
                    "matmul_nt {r}x{k}x{c} at width {width}"
                );
            });
        }
    }
}
