//! Structural operations: concatenation, slicing, row gathering/scattering.

use crate::Tensor;

impl Tensor {
    /// Concatenates tensors horizontally (same row count).
    ///
    /// # Panics
    /// Panics if `parts` is empty or the row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols: no parts");
        let rows = parts[0].rows();
        let cols: usize = parts.iter().map(|p| p.cols()).sum();
        for p in parts {
            assert_eq!(p.rows(), rows, "concat_cols: row mismatch");
        }
        let mut out = Tensor::zeros(rows, cols);
        for i in 0..rows {
            let dst = out.row_mut(i);
            let mut off = 0;
            for p in parts {
                let src = p.row(i);
                dst[off..off + src.len()].copy_from_slice(src);
                off += src.len();
            }
        }
        out
    }

    /// Concatenates tensors vertically (same column count).
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows: no parts");
        let cols = parts[0].cols();
        let rows: usize = parts.iter().map(|p| p.rows()).sum();
        for p in parts {
            assert_eq!(p.cols(), cols, "concat_rows: column mismatch");
        }
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(rows, cols, data).expect("concat_rows computed shape")
    }

    /// Copies columns `[start, start + len)` into a new tensor.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert!(
            start + len <= self.cols(),
            "slice_cols: [{start}, {}) out of 0..{}",
            start + len,
            self.cols()
        );
        let mut out = Tensor::zeros(self.rows(), len);
        for i in 0..self.rows() {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..start + len]);
        }
        out
    }

    /// Copies rows `[start, start + len)` into a new tensor.
    pub fn slice_rows(&self, start: usize, len: usize) -> Tensor {
        assert!(
            start + len <= self.rows(),
            "slice_rows: [{start}, {}) out of 0..{}",
            start + len,
            self.rows()
        );
        let mut out = Tensor::zeros(len, self.cols());
        for i in 0..len {
            out.row_mut(i).copy_from_slice(self.row(start + i));
        }
        out
    }

    /// Gathers rows by index: `out[i] = self[indices[i]]`.
    ///
    /// This is the embedding-lookup primitive; its adjoint is
    /// [`Tensor::scatter_add_rows`].
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols());
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows(), "gather_rows: index {idx} out of 0..{}", self.rows());
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Scatter-add: `self[indices[i]] += src[i]` for every row of `src`.
    ///
    /// Duplicated indices accumulate, which is exactly the gradient rule for
    /// embedding lookups with repeated tokens.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Tensor) {
        assert_eq!(indices.len(), src.rows(), "scatter_add_rows: index count mismatch");
        assert_eq!(self.cols(), src.cols(), "scatter_add_rows: column mismatch");
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows(), "scatter_add_rows: index {idx} out of range");
            let s = src.row(i);
            for (d, v) in self.row_mut(idx).iter_mut().zip(s) {
                *d += v;
            }
        }
    }

    /// Builds a tensor by stacking row vectors produced by `f(i)`.
    pub fn stack_rows(n: usize, cols: usize, mut f: impl FnMut(usize) -> Vec<f32>) -> Tensor {
        let mut out = Tensor::zeros(n, cols);
        for i in 0..n {
            let row = f(i);
            assert_eq!(row.len(), cols, "stack_rows: row {i} wrong length");
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> (Tensor, Tensor) {
        (
            Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
            Tensor::from_rows(&[vec![5.0], vec![6.0]]),
        )
    }

    #[test]
    fn concat_cols_layout() {
        let (a, b) = ab();
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 6.0]);
    }

    #[test]
    fn concat_rows_layout() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0]]);
        let b = Tensor::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn slices_are_views_copied() {
        let (a, _) = ab();
        assert_eq!(a.slice_cols(1, 1).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.slice_rows(1, 1).as_slice(), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "slice_cols")]
    fn slice_cols_bounds() {
        ab().0.slice_cols(1, 2);
    }

    #[test]
    fn gather_then_scatter_roundtrip() {
        let table = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![2.0, 2.0]]);
        let picked = table.gather_rows(&[2, 0, 2]);
        assert_eq!(picked.row(0), &[2.0, 2.0]);
        assert_eq!(picked.row(1), &[1.0, 0.0]);

        let mut grad = Tensor::zeros(3, 2);
        grad.scatter_add_rows(&[2, 0, 2], &Tensor::ones(3, 2));
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
        assert_eq!(grad.row(2), &[2.0, 2.0]); // duplicate index accumulated
    }

    #[test]
    fn stack_rows_builder() {
        let t = Tensor::stack_rows(3, 2, |i| vec![i as f32, 2.0 * i as f32]);
        assert_eq!(t.row(2), &[2.0, 4.0]);
    }
}
