//! Global tensor-allocation counters.
//!
//! Every allocating [`crate::Tensor`] constructor (and `Clone`) bumps these
//! relaxed atomic counters. They exist so benches and regression tests can
//! prove "zero allocations in steady state" claims about the arena executor
//! and pin the analyzer's memory estimates against observed allocation
//! traffic. Counting is append-only: callers capture a snapshot before and
//! after a region and diff, rather than resetting shared state.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Records one tensor-buffer allocation of `elems` `f32` elements.
#[inline]
pub(crate) fn record(elems: usize) {
    if elems == 0 {
        // Zero-sized `Vec`s (empty tensors, placeholders) never hit the heap.
        return;
    }
    COUNT.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add((elems * size_of::<f32>()) as u64, Ordering::Relaxed);
}

/// Cumulative tensor-allocation counters at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of tensor buffers allocated since process start.
    pub count: u64,
    /// Total bytes of those buffers.
    pub bytes: u64,
}

impl AllocStats {
    /// Counters accumulated since `earlier` was captured.
    pub fn since(self, earlier: AllocStats) -> AllocStats {
        AllocStats { count: self.count - earlier.count, bytes: self.bytes - earlier.bytes }
    }
}

/// Captures the current global counters.
pub fn alloc_stats() -> AllocStats {
    AllocStats { count: COUNT.load(Ordering::Relaxed), bytes: BYTES.load(Ordering::Relaxed) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn constructors_and_clone_are_counted() {
        let before = alloc_stats();
        let a = Tensor::zeros(4, 8);
        let _b = a.clone();
        let _c = Tensor::row_vector(&[1.0, 2.0]);
        let d = alloc_stats().since(before);
        assert!(d.count >= 3, "expected at least 3 recorded allocations, got {}", d.count);
        assert!(d.bytes >= (32 + 32 + 2) * 4, "expected at least 264 bytes, got {}", d.bytes);
    }

    #[test]
    fn placeholders_are_free() {
        let before = alloc_stats();
        let p = Tensor::placeholder(128, 128);
        let _q = p.clone();
        // Another thread may allocate concurrently, so assert only on this
        // thread's deterministic contribution being absent: a placeholder
        // carries no data, so cloning it records nothing. Re-capture via an
        // empty tensor to keep the check single-threaded-exact in practice.
        let d = alloc_stats().since(before);
        // `cargo test` runs tests in parallel; tolerate other threads but a
        // placeholder itself must never add its full 64 KiB footprint.
        assert!(d.bytes < (128 * 128 * 4) as u64, "placeholder was counted: {d:?}");
    }
}
