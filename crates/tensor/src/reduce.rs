//! Reductions: sums, means, argmax, and row statistics.

use crate::Tensor;

/// Interleaved per-row `[mean, variance]` statistics of a raw `r x c`
/// row-major buffer, written into `stats` (`r x 2`), with the same block
/// geometry as [`Tensor::row_moments`] — bitwise identical to the tensor
/// method. This is the entry point the arena executor uses for the fused
/// layer-norm forward/backward.
pub fn row_moments_into(src: &[f32], stats: &mut [f32], r: usize, c: usize) {
    debug_assert_eq!(src.len(), r * c, "row_moments_into: src buffer");
    debug_assert_eq!(stats.len(), r * 2, "row_moments_into: stats buffer");
    if r == 0 || c == 0 {
        return;
    }
    let cf = c as f32;
    crate::ops::par_row_blocks(r, 2, crate::cost::row_moments_flops(r, c), stats, |row0, block| {
        for (di, s) in block.chunks_exact_mut(2).enumerate() {
            let i = row0 + di;
            let row = &src[i * c..(i + 1) * c];
            let m = row.iter().sum::<f32>() / cf;
            let v = row.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / cf;
            s[0] = m;
            s[1] = v;
        }
    });
}

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Sums over rows, producing a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols());
        for i in 0..self.rows() {
            let src = self.row(i);
            for (o, v) in out.row_mut(0).iter_mut().zip(src) {
                *o += v;
            }
        }
        out
    }

    /// Sums over columns, producing a `rows x 1` column vector.
    pub fn sum_cols(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows(), 1);
        for i in 0..self.rows() {
            out.set(i, 0, self.row(i).iter().sum());
        }
        out
    }

    /// Means over rows, producing a `1 x cols` row vector.
    pub fn mean_rows(&self) -> Tensor {
        assert!(self.rows() > 0, "mean_rows: empty tensor");
        self.sum_rows().scale(1.0 / self.rows() as f32)
    }

    /// Index of the maximum element in row `r` (first on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Maximum element of the whole tensor.
    pub fn max(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element of the whole tensor.
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Per-row maximum, as a `rows x 1` column vector (the stabilizer for
    /// row-wise `exp`: `exp(x - max_cols(x))` cannot overflow).
    ///
    /// # Panics
    /// Panics on tensors with no columns (a row without elements has no
    /// maximum).
    pub fn max_cols(&self) -> Tensor {
        assert!(self.cols() > 0, "max_cols: tensor has no columns");
        let mut out = Tensor::zeros(self.rows(), 1);
        for i in 0..self.rows() {
            let m = self.row(i).iter().copied().fold(f32::NEG_INFINITY, f32::max);
            out.set(i, 0, m);
        }
        out
    }

    /// Per-row mean and (biased) variance; returned as two `rows x 1` vectors.
    ///
    /// Used by the fused layer-norm forward/backward in `hiergat-nn`. Large
    /// inputs compute their statistics into an interleaved `rows x 2` block
    /// in parallel (each row's reduction stays within one task, so results
    /// are bitwise identical across thread counts), then unzip serially.
    pub fn row_moments(&self) -> (Tensor, Tensor) {
        let (r, c) = self.shape();
        let mut mean = Tensor::zeros(r, 1);
        let mut var = Tensor::zeros(r, 1);
        if r == 0 || c == 0 {
            return (mean, var);
        }
        let mut stats = Tensor::zeros(r, 2);
        row_moments_into(self.as_slice(), stats.as_mut_slice(), r, c);
        for i in 0..r {
            mean.set(i, 0, stats.get(i, 0));
            var.set(i, 0, stats.get(i, 1));
        }
        (mean, var)
    }

    /// Single-block reference for [`Tensor::row_moments`].
    pub fn row_moments_serial(&self) -> (Tensor, Tensor) {
        parallel::with_threads(1, || self.row_moments())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tensor {
        Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn sums() {
        assert_eq!(t().sum(), 21.0);
        assert_eq!(t().sum_rows().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(t().sum_cols().as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn means() {
        assert_eq!(t().mean(), 3.5);
        assert_eq!(t().mean_rows().as_slice(), &[2.5, 3.5, 4.5]);
        assert_eq!(Tensor::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        let a = Tensor::from_rows(&[vec![1.0, 3.0, 3.0]]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn min_max() {
        assert_eq!(t().max(), 6.0);
        assert_eq!(t().min(), 1.0);
    }

    #[test]
    fn max_cols_per_row() {
        let m = t().max_cols();
        assert_eq!(m.shape(), (2, 1));
        assert_eq!(m.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "no columns")]
    fn max_cols_panics_on_zero_width() {
        Tensor::zeros(2, 0).max_cols();
    }

    #[test]
    fn moments() {
        let (m, v) = t().row_moments();
        assert_eq!(m.as_slice(), &[2.0, 5.0]);
        // var of [1,2,3] = 2/3
        assert!((v.get(0, 0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((v.get(1, 0) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn row_moments_bitwise_match_serial_across_widths() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // 67 x 300 puts the FLOP estimate over the parallel threshold with a
        // row count that does not divide evenly by the split width.
        let a = Tensor::rand_normal(67, 300, 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        let (m_ref, v_ref) = a.row_moments_serial();
        for width in [1usize, 2, 8] {
            parallel::with_threads(width, || {
                let (m, v) = a.row_moments();
                for (x, y) in m.as_slice().iter().zip(m_ref.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "mean at width {width}");
                }
                for (x, y) in v.as_slice().iter().zip(v_ref.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "var at width {width}");
                }
            });
        }
    }
}
