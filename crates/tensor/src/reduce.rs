//! Reductions: sums, means, argmax, and row statistics.

use crate::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Sums over rows, producing a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols());
        for i in 0..self.rows() {
            let src = self.row(i);
            for (o, v) in out.row_mut(0).iter_mut().zip(src) {
                *o += v;
            }
        }
        out
    }

    /// Sums over columns, producing a `rows x 1` column vector.
    pub fn sum_cols(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows(), 1);
        for i in 0..self.rows() {
            out.set(i, 0, self.row(i).iter().sum());
        }
        out
    }

    /// Means over rows, producing a `1 x cols` row vector.
    pub fn mean_rows(&self) -> Tensor {
        assert!(self.rows() > 0, "mean_rows: empty tensor");
        self.sum_rows().scale(1.0 / self.rows() as f32)
    }

    /// Index of the maximum element in row `r` (first on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Maximum element of the whole tensor.
    pub fn max(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element of the whole tensor.
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Per-row mean and (biased) variance; returned as two `rows x 1` vectors.
    ///
    /// Used by the fused layer-norm forward/backward in `hiergat-nn`.
    pub fn row_moments(&self) -> (Tensor, Tensor) {
        let c = self.cols() as f32;
        let mut mean = Tensor::zeros(self.rows(), 1);
        let mut var = Tensor::zeros(self.rows(), 1);
        for i in 0..self.rows() {
            let row = self.row(i);
            let m = row.iter().sum::<f32>() / c;
            let v = row.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / c;
            mean.set(i, 0, m);
            var.set(i, 0, v);
        }
        (mean, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tensor {
        Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn sums() {
        assert_eq!(t().sum(), 21.0);
        assert_eq!(t().sum_rows().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(t().sum_cols().as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn means() {
        assert_eq!(t().mean(), 3.5);
        assert_eq!(t().mean_rows().as_slice(), &[2.5, 3.5, 4.5]);
        assert_eq!(Tensor::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        let a = Tensor::from_rows(&[vec![1.0, 3.0, 3.0]]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn min_max() {
        assert_eq!(t().max(), 6.0);
        assert_eq!(t().min(), 1.0);
    }

    #[test]
    fn moments() {
        let (m, v) = t().row_moments();
        assert_eq!(m.as_slice(), &[2.0, 5.0]);
        // var of [1,2,3] = 2/3
        assert!((v.get(0, 0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((v.get(1, 0) - 2.0 / 3.0).abs() < 1e-6);
    }
}
