//! Integer and half-precision storage kernels for quantised inference.
//!
//! The absint audit (`hiergat-nn`) proves per-tensor value intervals and
//! classifies each tensor `int8` / `f16` / `f32`; this module supplies the
//! storage codecs and the dequant-free integer GEMM those classes need:
//!
//! * **u8 affine codec** — `v ≈ scale * (q - zero_point)` with `q` in
//!   `[0, 255]`. Encoding rounds to nearest; the audit-proven interval
//!   guarantees the clamp is never load-bearing (the rejecting quantiser
//!   that enforces the interval lives in `hiergat-nn`, which owns the
//!   proof).
//! * **IEEE 754 binary16 codec** — round-to-nearest-even encode, exact
//!   decode (every f16 value is exactly representable in f32). Storage is
//!   raw `u16` bit patterns; arithmetic always happens in f32.
//! * **`matmul_u8_into`** — C = dequant(A) · dequant(B) computed without
//!   dequantising: exact `i32` dot products over the raw `u8` operands,
//!   zero points folded out afterwards via the row/column-sum identity
//!   `Σ(a-za)(b-zb) = Σab − zb·Σa − za·Σb + k·za·zb`, one final scale
//!   multiply per output element. Integer accumulation is exact, so the
//!   result is bitwise identical at every thread width and independent of
//!   loop order — the determinism the f32 microkernel buys with fixed
//!   tile geometry comes for free here.
//!
//! The GEMM streams B row-by-row (unit stride) into a resident `i32`
//! accumulator row — the same panel-streaming principle as the f32
//! microkernel's packed B panels, minus the packing copy, because a
//! row-major `u8` operand is already a contiguous panel. Scratch lives in
//! thread-local buffers (the convention `microkernel` established):
//! steady-state calls allocate nothing and scratch is not part of any
//! arena budget.

use std::cell::RefCell;

/// Largest finite f16 value; anything of greater magnitude cannot be
/// stored as binary16 without overflowing to infinity.
pub const F16_MAX: f32 = 65504.0;

/// Deepest contraction `matmul_u8_into` accepts: `k * 255 * 255` must fit
/// an `i32` dot product (33 000 * 65 025 < 2^31).
pub const MAX_U8_GEMM_DEPTH: usize = 33_000;

/// Encodes one value into the u8 affine grid (round to nearest, ties away
/// from zero via `f32::round`). Out-of-grid inputs saturate; callers that
/// must *reject* out-of-interval values check before encoding.
#[inline]
pub fn u8_encode(v: f32, scale: f32, zero_point: u8) -> u8 {
    if scale == 0.0 {
        return zero_point;
    }
    let q = (v / scale + f32::from(zero_point)).round();
    q.clamp(0.0, 255.0) as u8
}

/// Decodes one u8 affine code back to f32.
#[inline]
pub fn u8_decode(q: u8, scale: f32, zero_point: u8) -> f32 {
    scale * (f32::from(q) - f32::from(zero_point))
}

/// Encodes a slice into the u8 affine grid.
pub fn u8_encode_slice(src: &[f32], scale: f32, zero_point: u8, dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "u8_encode_slice: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = u8_encode(s, scale, zero_point);
    }
}

/// Decodes a u8 affine slice to f32.
pub fn u8_decode_slice(src: &[u8], scale: f32, zero_point: u8, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "u8_decode_slice: length mismatch");
    let zp = f32::from(zero_point);
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = scale * (f32::from(s) - zp);
    }
}

/// Converts f32 to IEEE 754 binary16 bits with round-to-nearest-even.
/// Values above [`F16_MAX`] in magnitude round to signed infinity; NaN
/// maps to a quiet f16 NaN.
#[inline]
pub fn f16_from_f32(x: f32) -> u16 {
    // Branch-light conversion that delegates the round-to-nearest-even to
    // the FPU itself: rescale so the 24-bit significand's low 13 bits fall
    // below the binary32 rounding point, add a bias that positions the
    // result's exponent/mantissa at fixed bit offsets, and read the
    // binary16 fields straight out of the rounded sum. Verified bitwise
    // identical to the direct shift-based conversion over every one of the
    // 2^32 f32 bit patterns (subnormals, overflow saturation, signed
    // zeros). Only the inf/NaN guard branches.
    let w = x.to_bits();
    let sign = w & 0x8000_0000;
    let shl1_w = w.wrapping_add(w); // drops the sign, doubles the exponent field
    if shl1_w >= 0xff00_0000 {
        // Infinity or (quiet) NaN.
        return ((sign >> 16) as u16) | 0x7c00 | if shl1_w > 0xff00_0000 { 0x0200 } else { 0 };
    }
    // |x| * 2^112 * 2^-110 = |x| * 4, rounded where f16 will round: the
    // two-step product pushes overflow-bound values to infinity first.
    let scale_to_inf = f32::from_bits(0x7780_0000); // 2^112
    let scale_to_zero = f32::from_bits(0x0880_0000); // 2^-110
    let base = (x.abs() * scale_to_inf) * scale_to_zero;
    let bias = {
        // Exponent-dependent renormaliser; the floor pins subnormal
        // results so their significand lands in the low 10 bits.
        let b = shl1_w & 0xff00_0000;
        if b < 0x7100_0000 {
            0x7100_0000u32
        } else {
            b
        }
    };
    let base = f32::from_bits((bias >> 1) + 0x0780_0000) + base;
    let bits = base.to_bits();
    let exp_bits = (bits >> 13) & 0x7c00;
    let mantissa_bits = bits & 0x0fff;
    ((sign >> 16) as u16) | (exp_bits + mantissa_bits) as u16
}

/// Converts IEEE 754 binary16 bits to f32 (exact — every binary16 value
/// is representable in binary32).
#[inline]
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = (u32::from(h) & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1f;
    let man = u32::from(h) & 0x3ff;
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (man << 13)
    } else if exp != 0 {
        sign | ((exp + 112) << 23) | (man << 13)
    } else if man == 0 {
        sign
    } else {
        // Subnormal: normalise man * 2^-24 into a binary32 normal.
        let p = 31 - man.leading_zeros(); // position of the top set bit
        let e32 = 127 - 24 + p;
        sign | (e32 << 23) | ((man & !(1 << p)) << (23 - p))
    };
    f32::from_bits(bits)
}

/// Decode table for all 2^16 binary16 bit patterns (256 KiB, built once
/// per process from [`f16_to_f32`]). A table lookup beats the branchy
/// arithmetic decode in the quantised executor's hot loops, and it is
/// bitwise identical by construction.
fn f16_lut() -> &'static [f32; 65536] {
    static LUT: std::sync::LazyLock<Box<[f32; 65536]>> = std::sync::LazyLock::new(|| {
        let mut t = vec![0f32; 65536];
        for (h, slot) in t.iter_mut().enumerate() {
            *slot = f16_to_f32(h as u16);
        }
        t.into_boxed_slice().try_into().expect("65536-entry f16 decode table")
    });
    &LUT
}

/// Encodes a slice to binary16 bits (round-to-nearest-even per element).
pub fn f16_encode_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "f16_encode_slice: length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if f16c_active() {
        // SAFETY: `f16c_active` verified F16C+AVX support at runtime.
        unsafe { f16_encode_u16_f16c(src, dst) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16_from_f32(s);
    }
}

/// Decodes a binary16 slice to f32.
pub fn f16_decode_slice(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "f16_decode_slice: length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if f16c_active() {
        // SAFETY: `f16c_active` verified F16C+AVX support at runtime.
        unsafe { f16_decode_u16_f16c(src, dst) };
        return;
    }
    let lut = f16_lut();
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = lut[usize::from(s)];
    }
}

/// Encodes a slice to binary16 stored as little-endian bytes
/// (`dst.len() == 2 * src.len()`): the storage layout the byte-granular
/// quantised arena uses, so no slot needs alignment.
pub fn f16_encode_slice_le(src: &[f32], dst: &mut [u8]) {
    assert_eq!(2 * src.len(), dst.len(), "f16_encode_slice_le: length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if f16c_active() {
        // SAFETY: `f16c_active` verified F16C+AVX support at runtime;
        // byte destinations take the unaligned store path.
        unsafe { f16_encode_le_f16c(src, dst) };
        return;
    }
    for (&s, ch) in src.iter().zip(dst.chunks_exact_mut(2)) {
        ch.copy_from_slice(&f16_from_f32(s).to_le_bytes());
    }
}

/// Decodes little-endian binary16 bytes to f32
/// (`src.len() == 2 * dst.len()`).
pub fn f16_decode_slice_le(src: &[u8], dst: &mut [f32]) {
    assert_eq!(src.len(), 2 * dst.len(), "f16_decode_slice_le: length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if f16c_active() {
        // SAFETY: `f16c_active` verified F16C+AVX support at runtime;
        // byte sources take the unaligned load path.
        unsafe { f16_decode_le_f16c(src, dst) };
        return;
    }
    let lut = f16_lut();
    for (d, ch) in dst.iter_mut().zip(src.chunks_exact(2)) {
        *d = lut[usize::from(u16::from_le_bytes([ch[0], ch[1]]))];
    }
}

/// Encodes an f32 slice as little-endian bytes
/// (`dst.len() == 4 * src.len()`).
pub fn f32_encode_slice_le(src: &[f32], dst: &mut [u8]) {
    assert_eq!(4 * src.len(), dst.len(), "f32_encode_slice_le: length mismatch");
    for (&s, ch) in src.iter().zip(dst.chunks_exact_mut(4)) {
        ch.copy_from_slice(&s.to_le_bytes());
    }
}

/// Decodes little-endian f32 bytes (`src.len() == 4 * dst.len()`).
pub fn f32_decode_slice_le(src: &[u8], dst: &mut [f32]) {
    assert_eq!(src.len(), 4 * dst.len(), "f32_decode_slice_le: length mismatch");
    for (d, ch) in dst.iter_mut().zip(src.chunks_exact(4)) {
        *d = f32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
    }
}

/// `true` when the F16C conversion path is compiled in **and** the CPU
/// supports it (checked once per process). Hardware `vcvtps2ph` rounds
/// to nearest even exactly like [`f16_from_f32`], and `vcvtph2ps` is
/// exact like [`f16_to_f32`], so the two paths are bitwise identical on
/// every finite value (NaN payloads may differ; the rejecting quantiser
/// never encodes a NaN).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn f16c_active() -> bool {
    static F16C: std::sync::LazyLock<bool> = std::sync::LazyLock::new(|| {
        std::arch::is_x86_feature_detected!("f16c") && std::arch::is_x86_feature_detected!("avx")
    });
    *F16C
}

/// Eight-lane F16C encode into `u16` destinations; scalar RNE tail.
///
/// # Safety
/// Callers must have verified F16C+AVX support (see [`f16c_active`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "f16c,avx")]
unsafe fn f16_encode_u16_f16c(src: &[f32], dst: &mut [u16]) {
    use std::arch::x86_64::{__m128i, _mm256_cvtps_ph, _mm256_loadu_ps, _mm_storeu_si128};
    let n = src.len();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(src.as_ptr().add(i));
        let h = _mm256_cvtps_ph::<0x00>(v); // round to nearest even
        _mm_storeu_si128(dst.as_mut_ptr().add(i).cast::<__m128i>(), h);
        i += 8;
    }
    for j in i..n {
        dst[j] = f16_from_f32(src[j]);
    }
}

/// Eight-lane F16C decode from `u16` sources; scalar tail.
///
/// # Safety
/// Callers must have verified F16C+AVX support (see [`f16c_active`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "f16c,avx")]
unsafe fn f16_decode_u16_f16c(src: &[u16], dst: &mut [f32]) {
    use std::arch::x86_64::{__m128i, _mm256_cvtph_ps, _mm256_storeu_ps, _mm_loadu_si128};
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let h = _mm_loadu_si128(src.as_ptr().add(i).cast::<__m128i>());
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_cvtph_ps(h));
        i += 8;
    }
    for j in i..n {
        dst[j] = f16_to_f32(src[j]);
    }
}

/// Eight-lane F16C encode into little-endian byte destinations.
///
/// # Safety
/// Callers must have verified F16C+AVX support (see [`f16c_active`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "f16c,avx")]
unsafe fn f16_encode_le_f16c(src: &[f32], dst: &mut [u8]) {
    use std::arch::x86_64::{__m128i, _mm256_cvtps_ph, _mm256_loadu_ps, _mm_storeu_si128};
    let n = src.len();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(src.as_ptr().add(i));
        let h = _mm256_cvtps_ph::<0x00>(v); // round to nearest even
        _mm_storeu_si128(dst.as_mut_ptr().add(2 * i).cast::<__m128i>(), h);
        i += 8;
    }
    for j in i..n {
        dst[2 * j..2 * j + 2].copy_from_slice(&f16_from_f32(src[j]).to_le_bytes());
    }
}

/// Eight-lane F16C decode from little-endian byte sources.
///
/// # Safety
/// Callers must have verified F16C+AVX support (see [`f16c_active`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "f16c,avx")]
unsafe fn f16_decode_le_f16c(src: &[u8], dst: &mut [f32]) {
    use std::arch::x86_64::{__m128i, _mm256_cvtph_ps, _mm256_storeu_ps, _mm_loadu_si128};
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let h = _mm_loadu_si128(src.as_ptr().add(2 * i).cast::<__m128i>());
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_cvtph_ps(h));
        i += 8;
    }
    let lut = f16_lut();
    for j in i..n {
        dst[j] = lut[usize::from(u16::from_le_bytes([src[2 * j], src[2 * j + 1]]))];
    }
}

/// Transposes a row-major `rows x cols` u8 matrix into `dst`
/// (`cols x rows`), so the NT/TN matmul variants can feed the NN GEMM.
pub fn transpose_u8_into(src: &[u8], dst: &mut [u8], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "transpose_u8_into: src shape mismatch");
    assert_eq!(dst.len(), rows * cols, "transpose_u8_into: dst shape mismatch");
    for i in 0..rows {
        for j in 0..cols {
            dst[j * rows + i] = src[i * cols + j];
        }
    }
}

thread_local! {
    /// Resident i32 accumulator row (one output row of dot products).
    static ACC_I32: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
    /// Column sums of the B operand for the zero-point correction.
    static COLSUM: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
}

/// Dequant-free integer GEMM: writes `out = scale * (A - za)·(B - zb)`
/// where `A` is `r x k` and `B` is `k x c`, both row-major u8 affine
/// codes, and `scale` is the product of the two operands' affine scales.
///
/// Dot products accumulate exactly in `i32` over the raw codes; the zero
/// points are folded out once per element via precomputed row/column sums
/// (`i64` arithmetic, so the correction cannot overflow). The only
/// roundings are the final `i64 -> f32` conversion and the scale
/// multiply, both order-independent — results are bitwise identical at
/// every thread width by construction.
///
/// Panics if `k` exceeds [`MAX_U8_GEMM_DEPTH`] (the exact-i32 bound).
pub fn matmul_u8_into(
    a: &[u8],
    za: u8,
    b: &[u8],
    zb: u8,
    scale: f32,
    out: &mut [f32],
    r: usize,
    k: usize,
    c: usize,
) {
    assert_eq!(a.len(), r * k, "matmul_u8_into: A is not r x k");
    assert_eq!(b.len(), k * c, "matmul_u8_into: B is not k x c");
    assert_eq!(out.len(), r * c, "matmul_u8_into: out is not r x c");
    assert!(k <= MAX_U8_GEMM_DEPTH, "matmul_u8_into: depth {k} overflows exact i32 accumulation");
    let za_i = i64::from(za);
    let zb_i = i64::from(zb);
    let kzz = k as i64 * za_i * zb_i;
    COLSUM.with(|colsum| {
        ACC_I32.with(|acc| {
            let mut colsum = colsum.borrow_mut();
            let mut acc = acc.borrow_mut();
            colsum.clear();
            colsum.resize(c, 0);
            for row in b.chunks_exact(c.max(1)).take(if c == 0 { 0 } else { k }) {
                for (s, &v) in colsum.iter_mut().zip(row) {
                    *s += i32::from(v);
                }
            }
            acc.resize(c, 0);
            for i in 0..r {
                let arow = &a[i * k..(i + 1) * k];
                let rowsum: i64 = arow.iter().map(|&v| i64::from(v)).sum();
                acc.fill(0);
                for (l, &av) in arow.iter().enumerate() {
                    let av = i32::from(av);
                    let brow = &b[l * c..(l + 1) * c];
                    for (dst, &bv) in acc.iter_mut().zip(brow) {
                        *dst += av * i32::from(bv);
                    }
                }
                for ((o, &dot), &cs) in
                    out[i * c..(i + 1) * c].iter_mut().zip(acc.iter()).zip(colsum.iter())
                {
                    let exact = i64::from(dot) - zb_i * rowsum - za_i * i64::from(cs) + kzz;
                    *o = scale * exact as f32;
                }
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference binary16 decode built from exact f32 arithmetic.
    fn f16_to_f32_reference(h: u16) -> f32 {
        let neg = h & 0x8000 != 0;
        let e = i32::from((h >> 10) & 0x1f);
        let m = f32::from(h & 0x3ff);
        let mag = if e == 0x1f {
            if m == 0.0 {
                f32::INFINITY
            } else {
                f32::NAN
            }
        } else if e == 0 {
            m * 2f32.powi(-24)
        } else {
            (1024.0 + m) * 2f32.powi(e - 25)
        };
        if neg {
            -mag
        } else {
            mag
        }
    }

    #[test]
    fn f16_decode_matches_reference_exhaustively() {
        for h in 0..=u16::MAX {
            let got = f16_to_f32(h);
            let want = f16_to_f32_reference(h);
            if want.is_nan() {
                assert!(got.is_nan(), "bits {h:#06x}: expected NaN, got {got}");
            } else {
                assert_eq!(got.to_bits(), want.to_bits(), "bits {h:#06x}");
            }
        }
    }

    #[test]
    fn f16_roundtrip_is_identity_on_f16_values() {
        // Every finite f16 value must encode back to its own bit pattern.
        for h in 0..=u16::MAX {
            let v = f16_to_f32(h);
            if !v.is_finite() {
                continue;
            }
            let back = f16_from_f32(v);
            // +0 and -0 keep their signs; everything else is exact.
            assert_eq!(back, h, "f16 bits {h:#06x} -> {v} -> {back:#06x}");
        }
    }

    #[test]
    fn f16_encode_rounds_to_nearest_even() {
        // 2048.0 is exactly representable; 2049.0 sits halfway between
        // 2048 and 2050 and must round to the even mantissa (2048).
        assert_eq!(f16_to_f32(f16_from_f32(2049.0)), 2048.0);
        // 2051.0 is halfway between 2050 and 2052 -> even (2052).
        assert_eq!(f16_to_f32(f16_from_f32(2051.0)), 2052.0);
        // Above the halfway point rounds up.
        assert_eq!(f16_to_f32(f16_from_f32(2049.1)), 2050.0);
        // Overflow saturates to infinity, underflow to signed zero.
        assert_eq!(f16_from_f32(7.0e4), 0x7c00);
        assert_eq!(f16_from_f32(-7.0e4), 0xfc00);
        assert_eq!(f16_from_f32(1.0e-10), 0x0000);
        assert_eq!(f16_from_f32(-1.0e-10), 0x8000);
        assert!(f16_to_f32(f16_from_f32(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_relative_error_is_bounded() {
        // Normal range: relative error of one RNE rounding is <= 2^-11.
        for &v in &[1.0f32, -std::f32::consts::PI, 0.1, 123.456, 65000.0, 6.2e-5] {
            let r = f16_to_f32(f16_from_f32(v));
            assert!(((r - v) / v).abs() <= 2f32.powi(-11), "{v} -> {r}");
        }
    }

    #[test]
    fn f16_slice_codecs_match_scalar_on_finite_values() {
        // Whatever path the slice codecs take (scalar LUT or hardware
        // F16C), they must agree bitwise with the scalar reference on
        // finite values — the determinism contract of the quantised
        // executor. Ragged length exercises the SIMD tail.
        let vals: Vec<f32> = (0..533)
            .map(|i| (i as f32 - 266.0) * 0.37 + 1.0 / (i as f32 + 1.0))
            .chain([0.0, -0.0, 65504.0, -65504.0, 6.1e-5, -6.1e-5, 5.9e-8])
            .collect();
        let mut bits = vec![0u16; vals.len()];
        f16_encode_slice(&vals, &mut bits);
        let mut le = vec![0u8; 2 * vals.len()];
        f16_encode_slice_le(&vals, &mut le);
        for (i, &v) in vals.iter().enumerate() {
            let want = f16_from_f32(v);
            assert_eq!(bits[i], want, "u16 encode of {v}");
            assert_eq!(u16::from_le_bytes([le[2 * i], le[2 * i + 1]]), want, "le encode of {v}");
        }
        let mut back = vec![0f32; vals.len()];
        f16_decode_slice(&bits, &mut back);
        let mut back_le = vec![0f32; vals.len()];
        f16_decode_slice_le(&le, &mut back_le);
        for (i, &h) in bits.iter().enumerate() {
            let want = f16_to_f32(h).to_bits();
            assert_eq!(back[i].to_bits(), want, "u16 decode of {h:#06x}");
            assert_eq!(back_le[i].to_bits(), want, "le decode of {h:#06x}");
        }
    }

    #[test]
    fn f32_le_codecs_roundtrip_bitwise() {
        let vals: Vec<f32> = (0..97).map(|i| (i as f32) * -0.123 + 4.5e-3).collect();
        let mut bytes = vec![0u8; 4 * vals.len()];
        f32_encode_slice_le(&vals, &mut bytes);
        let mut back = vec![0f32; vals.len()];
        f32_decode_slice_le(&bytes, &mut back);
        for (v, b) in vals.iter().zip(&back) {
            assert_eq!(v.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn u8_codec_roundtrip_error_is_half_scale() {
        let scale = 0.05f32;
        let zp = 100u8;
        let mut v = -4.9f32;
        while v < 7.7 {
            let q = u8_encode(v, scale, zp);
            let r = u8_decode(q, scale, zp);
            assert!((r - v).abs() <= scale * 0.5 + 1e-6, "{v} -> {q} -> {r}");
            v += 0.013;
        }
        // Degenerate interval: everything maps to the zero point.
        assert_eq!(u8_encode(0.0, 0.0, 7), 7);
        assert_eq!(u8_decode(7, 0.0, 7), 0.0);
    }

    #[test]
    fn u8_slice_codecs_match_scalar() {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32) * 0.037 - 1.0).collect();
        let mut q = vec![0u8; vals.len()];
        u8_encode_slice(&vals, 0.02, 50, &mut q);
        let mut back = vec![0f32; vals.len()];
        u8_decode_slice(&q, 0.02, 50, &mut back);
        for (i, (&v, &b)) in vals.iter().zip(&back).enumerate() {
            assert_eq!(q[i], u8_encode(v, 0.02, 50));
            assert_eq!(b.to_bits(), u8_decode(q[i], 0.02, 50).to_bits());
        }
    }

    /// Naive i64 reference of the zero-point-corrected integer GEMM.
    fn matmul_u8_reference(
        a: &[u8],
        za: u8,
        b: &[u8],
        zb: u8,
        scale: f32,
        r: usize,
        k: usize,
        c: usize,
    ) -> Vec<f32> {
        let mut out = vec![0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                let mut acc = 0i64;
                for l in 0..k {
                    acc += (i64::from(a[i * k + l]) - i64::from(za))
                        * (i64::from(b[l * c + j]) - i64::from(zb));
                }
                out[i * c + j] = scale * acc as f32;
            }
        }
        out
    }

    #[test]
    fn u8_gemm_matches_exact_reference() {
        // Deterministic pseudo-random operands (LCG; no RNG dependency).
        let mut state = 0x1234_5678u32;
        let mut next = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 24) as u8
        };
        for &(r, k, c) in &[(1, 1, 1), (3, 5, 4), (7, 16, 9), (13, 33, 21)] {
            let a: Vec<u8> = (0..r * k).map(|_| next()).collect();
            let b: Vec<u8> = (0..k * c).map(|_| next()).collect();
            let (za, zb, scale) = (17u8, 200u8, 3.5e-4f32);
            let mut out = vec![0f32; r * c];
            matmul_u8_into(&a, za, &b, zb, scale, &mut out, r, k, c);
            let want = matmul_u8_reference(&a, za, &b, zb, scale, r, k, c);
            for (i, (&g, &w)) in out.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "element {i} of {r}x{k}x{c}");
            }
        }
    }

    #[test]
    fn u8_gemm_approximates_f32_matmul_of_decoded_operands() {
        let (r, k, c) = (4, 8, 5);
        let (sa, za) = (0.02f32, 128u8);
        let (sb, zb) = (0.01f32, 64u8);
        let aq: Vec<u8> = (0..r * k).map(|i| (i * 7 % 256) as u8).collect();
        let bq: Vec<u8> = (0..k * c).map(|i| (i * 13 % 256) as u8).collect();
        let mut out = vec![0f32; r * c];
        matmul_u8_into(&aq, za, &bq, zb, sa * sb, &mut out, r, k, c);
        let af: Vec<f32> = aq.iter().map(|&q| u8_decode(q, sa, za)).collect();
        let bf: Vec<f32> = bq.iter().map(|&q| u8_decode(q, sb, zb)).collect();
        let mut want = vec![0f32; r * c];
        crate::matmul_into(&af, &bf, &mut want, r, k, c);
        for (g, w) in out.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn u8_transpose_roundtrips() {
        let src: Vec<u8> = (0..12).collect();
        let mut t = vec![0u8; 12];
        transpose_u8_into(&src, &mut t, 3, 4);
        let mut back = vec![0u8; 12];
        transpose_u8_into(&t, &mut back, 4, 3);
        assert_eq!(src, back);
        assert_eq!(t[0], src[0]);
        assert_eq!(t[1], src[4]);
    }
}
