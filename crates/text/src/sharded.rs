//! Sharded inverted index for corpus-scale top-N cosine retrieval.
//!
//! [`CosineIndex`](crate::CosineIndex) accumulates query scores into a
//! `HashMap` and is fine for the toy Magellan tables, but at 10^6+
//! documents the resolve pipeline needs (a) postings split into shards so
//! queries fan out over the `parallel` pool, (b) dense per-shard score
//! accumulators instead of hashing, and (c) document-frequency pruning so
//! ubiquitous lexicon terms don't drag every query over the whole corpus.
//!
//! # Determinism
//!
//! Results are identical for *any* shard count and pool width:
//!
//! - A document's postings live entirely in one shard (`doc % n_shards`),
//!   so its score is accumulated in query-term order regardless of layout —
//!   bitwise-identical sums.
//! - Top-N selection (per shard and at the merge) uses the strict total
//!   order (score descending, doc id ascending); a set selected under a
//!   total order does not depend on offer order.
//! - The merge concatenates per-shard top-N lists and re-selects; the
//!   global top-N is a subset of the union of per-shard top-Ns, so this is
//!   exact.

use crate::tfidf::{SparseVec, TfIdf, TopSelect};
use std::cell::RefCell;

/// Marks terms whose document frequency exceeds `max_df_ratio * n_docs`
/// as stop terms (to be dropped from the index). DF is a global corpus
/// property, so pruning is independent of shard layout.
pub fn stop_terms_by_df(doc_freqs: &[u32], n_docs: usize, max_df_ratio: f64) -> Vec<bool> {
    let cutoff = (n_docs as f64 * max_df_ratio).max(1.0);
    doc_freqs.iter().map(|&df| f64::from(df) > cutoff).collect()
}

/// Convenience: stop-term mask from a fitted vectorizer.
pub fn stop_terms_of(tfidf: &TfIdf, max_df_ratio: f64) -> Vec<bool> {
    stop_terms_by_df(tfidf.doc_freqs(), tfidf.n_docs(), max_df_ratio)
}

/// Streaming builder for [`ShardedCosineIndex`]: push pre-transformed
/// document vectors one at a time (doc ids are assigned in push order).
pub struct ShardedIndexBuilder {
    shards: Vec<Vec<Vec<(u32, f32)>>>,
    stop: Vec<bool>,
    n_docs: usize,
}

impl ShardedIndexBuilder {
    /// `n_shards` must be at least 1.
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards >= 1, "sharded index needs at least one shard");
        Self { shards: (0..n_shards).map(|_| Vec::new()).collect(), stop: Vec::new(), n_docs: 0 }
    }

    /// Installs a stop-term mask (indexed by term id); postings for marked
    /// terms are dropped. See [`stop_terms_by_df`].
    #[must_use]
    pub fn with_stop_terms(mut self, stop: Vec<bool>) -> Self {
        self.stop = stop;
        self
    }

    /// Appends one document vector; its id is the number of docs pushed
    /// before it.
    pub fn push(&mut self, v: &SparseVec) {
        let doc = u32::try_from(self.n_docs).expect("sharded index holds at most u32::MAX docs");
        let slot = self.n_docs % self.shards.len();
        let shard = &mut self.shards[slot];
        for &(term, w) in v.entries() {
            if self.stop.get(term).copied().unwrap_or(false) {
                continue;
            }
            if term >= shard.len() {
                shard.resize_with(term + 1, Vec::new);
            }
            shard[term].push((doc, w));
        }
        self.n_docs += 1;
    }

    pub fn finish(self) -> ShardedCosineIndex {
        let n_shards = self.shards.len();
        let n_docs = self.n_docs;
        let pruned_terms = self.stop.iter().filter(|&&s| s).count();
        let shards = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(s, postings)| Shard {
                postings,
                n_local: if n_docs > s { (n_docs - s).div_ceil(n_shards) } else { 0 },
            })
            .collect();
        ShardedCosineIndex { shards, n_shards, n_docs, pruned_terms }
    }
}

struct Shard {
    /// `postings[term]` = `(doc id, weight)` in doc-id order.
    postings: Vec<Vec<(u32, f32)>>,
    /// Number of documents assigned to this shard.
    n_local: usize,
}

/// Sharded inverted index over unit-length TF-IDF vectors (cosine = dot).
pub struct ShardedCosineIndex {
    shards: Vec<Shard>,
    n_shards: usize,
    n_docs: usize,
    pruned_terms: usize,
}

/// Dense per-shard accumulator, reused across queries via a thread-local.
/// `mark` carries an epoch stamp so clearing a query is O(touched), not
/// O(shard size).
struct Scratch {
    scores: Vec<f32>,
    mark: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl Scratch {
    const fn new() -> Self {
        Self { scores: Vec::new(), mark: Vec::new(), epoch: 0, touched: Vec::new() }
    }

    fn begin(&mut self, n_local: usize) {
        if self.scores.len() < n_local {
            self.scores.resize(n_local, 0.0);
            self.mark.resize(n_local, 0);
        }
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = const { RefCell::new(Scratch::new()) };
}

impl ShardedCosineIndex {
    /// Single-pass build over a pre-transformed corpus (no stop terms).
    pub fn build(vectors: &[SparseVec], n_shards: usize) -> Self {
        let mut b = ShardedIndexBuilder::new(n_shards);
        for v in vectors {
            b.push(v);
        }
        b.finish()
    }

    /// Scores one shard and returns its top `n` hits, best first
    /// (global doc ids).
    fn shard_top_n(
        &self,
        s: usize,
        query: &SparseVec,
        n: usize,
        scratch: &mut Scratch,
    ) -> Vec<(usize, f32)> {
        let shard = &self.shards[s];
        scratch.begin(shard.n_local);
        let epoch = scratch.epoch;
        for &(term, qw) in query.entries() {
            let Some(posting) = shard.postings.get(term) else { continue };
            for &(doc, dw) in posting {
                let local = doc as usize / self.n_shards;
                if scratch.mark[local] != epoch {
                    scratch.mark[local] = epoch;
                    scratch.scores[local] = 0.0;
                    scratch.touched.push(doc);
                }
                scratch.scores[local] += qw * dw;
            }
        }
        let mut select = TopSelect::new(n);
        for &doc in &scratch.touched {
            select.offer(doc as usize, scratch.scores[doc as usize / self.n_shards]);
        }
        select.into_ranked()
    }

    /// Top `n` hits across all shards, best first (score descending, doc id
    /// ascending). Scans shards serially on the calling thread — this is
    /// the right shape when callers already fan *queries* over the pool
    /// (see [`top_n_batch`](Self::top_n_batch)).
    pub fn top_n(&self, query: &SparseVec, n: usize) -> Vec<(usize, f32)> {
        SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let mut select = TopSelect::new(n);
            for s in 0..self.n_shards {
                for (doc, score) in self.shard_top_n(s, query, n, scratch) {
                    select.offer(doc, score);
                }
            }
            select.into_ranked()
        })
    }

    /// Top `n` for a single query with the *shard* scans fanned over the
    /// `parallel` pool, then merged deterministically. Use for one-off
    /// queries; batch workloads should fan queries instead.
    pub fn top_n_par(&self, query: &SparseVec, n: usize) -> Vec<(usize, f32)> {
        let shard_ids: Vec<usize> = (0..self.n_shards).collect();
        let per_shard: Vec<Vec<(usize, f32)>> = parallel::par_map(&shard_ids, |&s| {
            SCRATCH.with(|cell| self.shard_top_n(s, query, n, &mut cell.borrow_mut()))
        });
        let mut select = TopSelect::new(n);
        for hits in per_shard {
            for (doc, score) in hits {
                select.offer(doc, score);
            }
        }
        select.into_ranked()
    }

    /// Top `n` for a batch of queries, fanned over the `parallel` pool one
    /// query per slot (bitwise-identical to serial at any pool width; each
    /// worker reuses its thread-local scratch).
    pub fn top_n_batch(&self, queries: &[SparseVec], n: usize) -> Vec<Vec<(usize, f32)>> {
        parallel::par_map(queries, |q| self.top_n(q, n))
    }

    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of vocabulary terms dropped by the stop-term mask.
    pub fn pruned_terms(&self) -> usize {
        self.pruned_terms
    }

    /// Total posting entries across shards.
    pub fn n_postings(&self) -> u64 {
        self.shards.iter().map(|sh| sh.postings.iter().map(|p| p.len() as u64).sum::<u64>()).sum()
    }

    /// Bytes held by posting storage (the peak-RSS proxy contribution of
    /// the index): capacity of every posting vector plus vector headers.
    pub fn memory_bytes(&self) -> u64 {
        const HDR: u64 = size_of::<Vec<(u32, f32)>>() as u64;
        const ENTRY: u64 = size_of::<(u32, f32)>() as u64;
        self.shards
            .iter()
            .map(|sh| sh.postings.iter().map(|p| HDR + p.capacity() as u64 * ENTRY).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::{CosineIndex, TfIdf};

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn corpus() -> Vec<Vec<String>> {
        vec![
            toks("canon eos r5 mirrorless camera body"),
            toks("canon eos r6 mirrorless camera body"),
            toks("nikon z6 mirrorless camera"),
            toks("sony a7 iii full frame camera"),
            toks("dell ultrasharp 27 monitor"),
            toks("lg 27 4k monitor display"),
            toks("canon eos r5 camera kit with lens"),
        ]
    }

    #[test]
    fn matches_flat_index_for_every_shard_count() {
        let docs = corpus();
        let tfidf = TfIdf::fit(&docs);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let flat = CosineIndex::build(&vecs);
        let query = tfidf.transform(&toks("canon eos r5 camera"));
        let want = flat.top_n(&query, 4);
        for shards in 1..=8 {
            let index = ShardedCosineIndex::build(&vecs, shards);
            assert_eq!(index.top_n(&query, 4), want, "{shards} shards diverged (serial)");
            assert_eq!(index.top_n_par(&query, 4), want, "{shards} shards diverged (par)");
        }
    }

    #[test]
    fn batch_matches_single_queries() {
        let docs = corpus();
        let tfidf = TfIdf::fit(&docs);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = ShardedCosineIndex::build(&vecs, 3);
        let queries: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let batch = index.top_n_batch(&queries, 3);
        for (q, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits, &index.top_n(q, 3));
        }
    }

    #[test]
    fn stop_terms_drop_ubiquitous_words() {
        let docs = corpus();
        let tfidf = TfIdf::fit(&docs);
        // "camera" appears in 5/7 docs; prune anything over 50% DF.
        let stop = stop_terms_of(&tfidf, 0.5);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let mut b = ShardedIndexBuilder::new(2).with_stop_terms(stop);
        for v in &vecs {
            b.push(v);
        }
        let pruned = b.finish();
        let full = ShardedCosineIndex::build(&vecs, 2);
        assert!(pruned.pruned_terms() >= 1);
        assert!(pruned.n_postings() < full.n_postings());
        // Discriminative terms still retrieve: r5 query finds both r5 docs.
        let hits = pruned.top_n(&tfidf.transform(&toks("canon eos r5")), 2);
        let ids: Vec<usize> = hits.iter().map(|h| h.0).collect();
        assert_eq!(ids, vec![0, 6]);
    }

    #[test]
    fn memory_bytes_counts_postings() {
        let docs = corpus();
        let tfidf = TfIdf::fit(&docs);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = ShardedCosineIndex::build(&vecs, 2);
        assert!(index.memory_bytes() >= index.n_postings() * 8);
        assert_eq!(index.n_docs(), docs.len());
        assert_eq!(index.n_shards(), 2);
    }
}
