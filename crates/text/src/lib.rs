//! Text processing for the HierGAT reproduction: tokenization, hashing
//! vocabularies, static FastText-style embeddings, TF-IDF, and classic
//! string-similarity measures.

mod embedding;
mod sharded;
mod similarity;
mod tfidf;
mod tokenize;
mod vocab;

#[cfg(test)]
mod proptests;

pub use embedding::{char_ngrams, StaticHashEmbedding};
pub use sharded::{stop_terms_by_df, stop_terms_of, ShardedCosineIndex, ShardedIndexBuilder};
pub use similarity::{
    cosine_tokens, exact, jaccard, jaro, jaro_winkler, levenshtein, levenshtein_sim, monge_elkan,
    numeric_sim, overlap_coefficient,
};
pub use tfidf::{CosineIndex, SparseVec, TfIdf, TfIdfBuilder};
pub use tokenize::{tokenize, Tokenizer};
pub use vocab::{fnv1a, HashVocab, Special, NUM_SPECIAL};
