//! Classic string-similarity measures.
//!
//! These power the Magellan baseline (feature engineering over attribute
//! pairs, §6.1 of the paper) and are also useful for blocking diagnostics.

use std::collections::HashSet;

/// Levenshtein (edit) distance between two strings, by characters.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity normalized into `[0, 1]`.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push((i, j));
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: matched characters out of order.
    let mut b_matches: Vec<usize> = a_matched.iter().map(|&(_, j)| j).collect();
    let mut transpositions = 0usize;
    let sorted = {
        let mut s = b_matches.clone();
        s.sort_unstable();
        s
    };
    for (x, y) in b_matches.iter().zip(&sorted) {
        if x != y {
            transpositions += 1;
        }
    }
    b_matches.sort_unstable();
    let t = transpositions as f64 / 2.0;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard 0.1 prefix scale.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard similarity over token sets.
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    let sa: HashSet<&str> = a.iter().map(String::as_str).collect();
    let sb: HashSet<&str> = b.iter().map(String::as_str).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Overlap coefficient over token sets: `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap_coefficient(a: &[String], b: &[String]) -> f64 {
    let sa: HashSet<&str> = a.iter().map(String::as_str).collect();
    let sb: HashSet<&str> = b.iter().map(String::as_str).collect();
    if sa.is_empty() || sb.is_empty() {
        return if sa.len() == sb.len() { 1.0 } else { 0.0 };
    }
    let inter = sa.intersection(&sb).count() as f64;
    inter / sa.len().min(sb.len()) as f64
}

/// Cosine similarity over token multisets (bag-of-words counts).
pub fn cosine_tokens(a: &[String], b: &[String]) -> f64 {
    use std::collections::HashMap;
    let mut ca: HashMap<&str, f64> = HashMap::new();
    let mut cb: HashMap<&str, f64> = HashMap::new();
    for t in a {
        *ca.entry(t).or_default() += 1.0;
    }
    for t in b {
        *cb.entry(t).or_default() += 1.0;
    }
    let dot: f64 = ca.iter().filter_map(|(k, va)| cb.get(k).map(|vb| va * vb)).sum();
    let na: f64 = ca.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return if na == nb { 1.0 } else { 0.0 };
    }
    dot / (na * nb)
}

/// Monge-Elkan similarity: mean over tokens of `a` of the best
/// Jaro-Winkler match in `b`.
pub fn monge_elkan(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() {
        return if b.is_empty() { 1.0 } else { 0.0 };
    }
    if b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for ta in a {
        let best = b.iter().map(|tb| jaro_winkler(ta, tb)).fold(0.0f64, f64::max);
        total += best;
    }
    total / a.len() as f64
}

/// Absolute relative difference of two numbers parsed from strings, mapped
/// to a similarity in `[0, 1]`; `None` if either fails to parse.
pub fn numeric_sim(a: &str, b: &str) -> Option<f64> {
    let fa: f64 = a.trim().parse().ok()?;
    let fb: f64 = b.trim().parse().ok()?;
    let denom = fa.abs().max(fb.abs());
    if denom == 0.0 {
        return Some(1.0);
    }
    Some((1.0 - (fa - fb).abs() / denom).max(0.0))
}

/// Exact-match indicator.
pub fn exact(a: &str, b: &str) -> f64 {
    f64::from(a == b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.9444).abs() < 1e-3);
        assert!((jaro("dixon", "dicksonx") - 0.7667).abs() < 1e-3);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefix() {
        let j = jaro("martha", "marhta");
        let jw = jaro_winkler("martha", "marhta");
        assert!(jw > j);
        assert!((jw - 0.9611).abs() < 1e-3);
    }

    #[test]
    fn jaccard_values() {
        assert_eq!(jaccard(&toks("a b c"), &toks("a b c")), 1.0);
        assert_eq!(jaccard(&toks("a b"), &toks("c d")), 0.0);
        assert!((jaccard(&toks("a b c"), &toks("b c d")) - 0.5).abs() < 1e-9);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn overlap_values() {
        assert_eq!(overlap_coefficient(&toks("a b"), &toks("a b c d")), 1.0);
        assert_eq!(overlap_coefficient(&toks("a"), &toks("b")), 0.0);
    }

    #[test]
    fn cosine_tokens_values() {
        assert!((cosine_tokens(&toks("a a b"), &toks("a a b")) - 1.0).abs() < 1e-9);
        assert_eq!(cosine_tokens(&toks("a"), &toks("b")), 0.0);
        let mid = cosine_tokens(&toks("a b"), &toks("b c"));
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn monge_elkan_rewards_fuzzy_token_matches() {
        let a = toks("adobe photoshop");
        let b = toks("adobee photoshopp");
        assert!(monge_elkan(&a, &b) > 0.9);
        assert_eq!(monge_elkan(&[], &[]), 1.0);
        assert_eq!(monge_elkan(&toks("x"), &[]), 0.0);
    }

    #[test]
    fn numeric_sim_values() {
        assert_eq!(numeric_sim("10", "10"), Some(1.0));
        assert!((numeric_sim("10", "5").expect("both sides numeric") - 0.5).abs() < 1e-9);
        assert_eq!(numeric_sim("abc", "5"), None);
        assert_eq!(numeric_sim("0", "0"), Some(1.0));
    }

    #[test]
    fn exact_indicator() {
        assert_eq!(exact("a", "a"), 1.0);
        assert_eq!(exact("a", "b"), 0.0);
    }
}
