//! TF-IDF vectorization with sparse cosine similarity.
//!
//! The collective-ER blocking protocol (§6.3 of the paper) ranks candidates
//! by TF-IDF cosine similarity; this module provides the fitted vectorizer
//! and an inverted-index-backed top-N query used by `hiergat-blocking`.

use std::collections::HashMap;

/// A sparse vector: sorted `(term id, weight)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(usize, f32)>,
}

impl SparseVec {
    /// Builds from unsorted pairs, merging duplicates.
    pub fn from_pairs(mut pairs: Vec<(usize, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(usize, f32)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some((last_id, last_w)) if *last_id == id => *last_w += w,
                _ => entries.push((id, w)),
            }
        }
        Self { entries }
    }

    /// Sorted entries.
    pub fn entries(&self) -> &[(usize, f32)] {
        &self.entries
    }

    /// Number of nonzero terms.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f32>().sqrt()
    }

    /// Dot product by sorted merge.
    pub fn dot(&self, other: &SparseVec) -> f32 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity.
    pub fn cosine(&self, other: &SparseVec) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }
}

/// A fitted TF-IDF vectorizer.
#[derive(Debug, Default)]
pub struct TfIdf {
    term_ids: HashMap<String, usize>,
    idf: Vec<f32>,
    n_docs: usize,
}

impl TfIdf {
    /// Fits term ids and smoothed IDF weights on a corpus of token lists.
    pub fn fit<S: AsRef<str>>(docs: &[Vec<S>]) -> Self {
        let mut term_ids: HashMap<String, usize> = HashMap::new();
        let mut doc_freq: Vec<usize> = Vec::new();
        for doc in docs {
            let mut seen: Vec<usize> = Vec::new();
            for tok in doc {
                let next_id = term_ids.len();
                let id = *term_ids.entry(tok.as_ref().to_string()).or_insert(next_id);
                if id == doc_freq.len() {
                    doc_freq.push(0);
                }
                if !seen.contains(&id) {
                    seen.push(id);
                    doc_freq[id] += 1;
                }
            }
        }
        let n = docs.len().max(1);
        let idf =
            doc_freq.iter().map(|&df| ((1.0 + n as f32) / (1.0 + df as f32)).ln() + 1.0).collect();
        Self { term_ids, idf, n_docs: docs.len() }
    }

    /// Transforms a token list to an L2-normalized TF-IDF sparse vector.
    /// Unseen terms are ignored.
    pub fn transform<S: AsRef<str>>(&self, doc: &[S]) -> SparseVec {
        let mut counts: HashMap<usize, f32> = HashMap::new();
        for tok in doc {
            if let Some(&id) = self.term_ids.get(tok.as_ref()) {
                *counts.entry(id).or_default() += 1.0;
            }
        }
        let pairs: Vec<(usize, f32)> =
            counts.into_iter().map(|(id, tf)| (id, tf * self.idf[id])).collect();
        let v = SparseVec::from_pairs(pairs);
        let norm = v.norm();
        if norm == 0.0 {
            v
        } else {
            SparseVec { entries: v.entries.into_iter().map(|(id, w)| (id, w / norm)).collect() }
        }
    }

    /// Vocabulary size after fitting.
    pub fn vocab_size(&self) -> usize {
        self.term_ids.len()
    }

    /// Number of documents the vectorizer was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// The IDF weight of a term, if known.
    pub fn idf_of(&self, term: &str) -> Option<f32> {
        self.term_ids.get(term).map(|&id| self.idf[id])
    }
}

/// Inverted index over normalized TF-IDF vectors for fast top-N cosine
/// queries (vectors are unit-length, so cosine = dot product).
pub struct CosineIndex {
    postings: HashMap<usize, Vec<(usize, f32)>>,
    n_docs: usize,
}

impl CosineIndex {
    /// Builds an index over pre-transformed document vectors.
    pub fn build(vectors: &[SparseVec]) -> Self {
        let mut postings: HashMap<usize, Vec<(usize, f32)>> = HashMap::new();
        for (doc, v) in vectors.iter().enumerate() {
            for &(term, w) in v.entries() {
                postings.entry(term).or_default().push((doc, w));
            }
        }
        Self { postings, n_docs: vectors.len() }
    }

    /// Returns up to `n` document ids with the highest cosine similarity to
    /// `query`, best first. Ties break toward the lower doc id so results
    /// are deterministic.
    pub fn top_n(&self, query: &SparseVec, n: usize) -> Vec<(usize, f32)> {
        let mut scores: HashMap<usize, f32> = HashMap::new();
        for &(term, qw) in query.entries() {
            if let Some(posting) = self.postings.get(&term) {
                for &(doc, dw) in posting {
                    *scores.entry(doc).or_default() += qw * dw;
                }
            }
        }
        let mut ranked: Vec<(usize, f32)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.truncate(n);
        ranked
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn sparse_vec_merges_duplicates_and_sorts() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 1.5)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn sparse_dot_and_cosine() {
        let a = SparseVec::from_pairs(vec![(0, 1.0), (2, 2.0)]);
        let b = SparseVec::from_pairs(vec![(2, 3.0), (5, 1.0)]);
        assert_eq!(a.dot(&b), 6.0);
        let c = a.cosine(&b);
        assert!(c > 0.0 && c < 1.0);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tfidf_downweights_common_terms() {
        let docs = vec![toks("apple pie"), toks("apple tart"), toks("apple crumble")];
        let tfidf = TfIdf::fit(&docs);
        assert!(
            tfidf.idf_of("apple").expect("apple is in corpus")
                < tfidf.idf_of("pie").expect("pie is in corpus")
        );
        assert_eq!(tfidf.vocab_size(), 4);
        assert_eq!(tfidf.n_docs(), 3);
    }

    #[test]
    fn transform_is_unit_length() {
        let docs = vec![toks("a b c"), toks("b c d")];
        let tfidf = TfIdf::fit(&docs);
        let v = tfidf.transform(&toks("a b b"));
        assert!((v.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn unseen_terms_are_ignored() {
        let tfidf = TfIdf::fit(&[toks("a b")]);
        let v = tfidf.transform(&toks("zzz yyy"));
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    fn index_top_n_ranks_exact_match_first() {
        let docs = vec![
            toks("canon eos camera"),
            toks("nikon dslr camera"),
            toks("sony mirrorless camera"),
        ];
        let tfidf = TfIdf::fit(&docs);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = CosineIndex::build(&vecs);
        let hits = index.top_n(&tfidf.transform(&toks("canon eos camera")), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 0);
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn index_is_deterministic_on_ties() {
        let docs = vec![toks("x y"), toks("x y")];
        let tfidf = TfIdf::fit(&docs);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = CosineIndex::build(&vecs);
        let hits = index.top_n(&tfidf.transform(&toks("x y")), 2);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }
}
