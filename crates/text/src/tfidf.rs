//! TF-IDF vectorization with sparse cosine similarity.
//!
//! The collective-ER blocking protocol (§6.3 of the paper) ranks candidates
//! by TF-IDF cosine similarity; this module provides the fitted vectorizer
//! and an inverted-index-backed top-N query used by `hiergat-blocking`.

use std::collections::HashMap;

/// A sparse vector: sorted `(term id, weight)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(usize, f32)>,
}

impl SparseVec {
    /// Builds from unsorted pairs, merging duplicates.
    pub fn from_pairs(mut pairs: Vec<(usize, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(usize, f32)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some((last_id, last_w)) if *last_id == id => *last_w += w,
                _ => entries.push((id, w)),
            }
        }
        Self { entries }
    }

    /// Sorted entries.
    pub fn entries(&self) -> &[(usize, f32)] {
        &self.entries
    }

    /// Number of nonzero terms.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f32>().sqrt()
    }

    /// Dot product by sorted merge.
    pub fn dot(&self, other: &SparseVec) -> f32 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity.
    pub fn cosine(&self, other: &SparseVec) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }
}

/// Streaming fit for [`TfIdf`]: feed documents one at a time so corpora
/// of millions of records never need their token lists materialised at
/// once. `TfIdf::fit` is a thin wrapper over this.
#[derive(Debug, Default)]
pub struct TfIdfBuilder {
    term_ids: HashMap<String, usize>,
    doc_freq: Vec<u32>,
    // Per-term stamp of the last document that counted it, so each term is
    // counted at most once per document in O(1) (no per-doc seen set).
    seen_stamp: Vec<u32>,
    n_docs: usize,
}

impl TfIdfBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one document's tokens into the vocabulary and document
    /// frequencies.
    pub fn add_doc<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.n_docs += 1;
        let stamp = u32::try_from(self.n_docs).unwrap_or(u32::MAX);
        for tok in tokens {
            let next_id = self.term_ids.len();
            let id = *self.term_ids.entry(tok.as_ref().to_string()).or_insert(next_id);
            if id == self.doc_freq.len() {
                self.doc_freq.push(0);
                self.seen_stamp.push(0);
            }
            if self.seen_stamp[id] != stamp {
                self.seen_stamp[id] = stamp;
                self.doc_freq[id] += 1;
            }
        }
    }

    /// Number of documents added so far.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Finalizes smoothed IDF weights.
    pub fn finish(self) -> TfIdf {
        let n = self.n_docs.max(1);
        let idf = self
            .doc_freq
            .iter()
            .map(|&df| ((1.0 + n as f32) / (1.0 + df as f32)).ln() + 1.0)
            .collect();
        TfIdf { term_ids: self.term_ids, idf, doc_freq: self.doc_freq, n_docs: self.n_docs }
    }
}

/// A fitted TF-IDF vectorizer.
#[derive(Debug, Default)]
pub struct TfIdf {
    term_ids: HashMap<String, usize>,
    idf: Vec<f32>,
    doc_freq: Vec<u32>,
    n_docs: usize,
}

impl TfIdf {
    /// Fits term ids and smoothed IDF weights on a corpus of token lists.
    pub fn fit<S: AsRef<str>>(docs: &[Vec<S>]) -> Self {
        let mut b = TfIdfBuilder::new();
        for doc in docs {
            b.add_doc(doc);
        }
        b.finish()
    }

    /// Transforms a token list to an L2-normalized TF-IDF sparse vector.
    /// Unseen terms are ignored.
    pub fn transform<S: AsRef<str>>(&self, doc: &[S]) -> SparseVec {
        let mut counts: HashMap<usize, f32> = HashMap::new();
        for tok in doc {
            if let Some(&id) = self.term_ids.get(tok.as_ref()) {
                *counts.entry(id).or_default() += 1.0;
            }
        }
        let pairs: Vec<(usize, f32)> =
            counts.into_iter().map(|(id, tf)| (id, tf * self.idf[id])).collect();
        let v = SparseVec::from_pairs(pairs);
        let norm = v.norm();
        if norm == 0.0 {
            v
        } else {
            SparseVec { entries: v.entries.into_iter().map(|(id, w)| (id, w / norm)).collect() }
        }
    }

    /// Vocabulary size after fitting.
    pub fn vocab_size(&self) -> usize {
        self.term_ids.len()
    }

    /// Number of documents the vectorizer was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// The IDF weight of a term, if known.
    pub fn idf_of(&self, term: &str) -> Option<f32> {
        self.term_ids.get(term).map(|&id| self.idf[id])
    }

    /// Per-term document frequencies, indexed by term id.
    pub fn doc_freqs(&self) -> &[u32] {
        &self.doc_freq
    }
}

/// Bounded top-N selection under the total order (score descending, then
/// doc id ascending). Keeps at most `limit` candidates in a binary heap
/// whose root is the current worst, so offering M candidates costs
/// O(M log limit) instead of the O(M log M) of a full sort. Because the
/// retained set is defined by a strict total order, the result is
/// independent of offer order — the property the sharded index's
/// deterministic merge rests on.
pub(crate) struct TopSelect {
    // Root = worst retained candidate (lowest score, then highest doc id).
    heap: std::collections::BinaryHeap<Worst>,
    limit: usize,
}

/// Heap entry ordered so that "greater" means "worse candidate".
struct Worst {
    score: f32,
    doc: usize,
}

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lower score is worse; on ties, the higher doc id is worse.
        other.score.total_cmp(&self.score).then_with(|| self.doc.cmp(&other.doc))
    }
}

impl TopSelect {
    pub fn new(limit: usize) -> Self {
        Self { heap: std::collections::BinaryHeap::with_capacity(limit.saturating_add(1)), limit }
    }

    /// Offers one candidate; keeps it only if it ranks among the best
    /// `limit` seen so far.
    pub fn offer(&mut self, doc: usize, score: f32) {
        if self.limit == 0 {
            return;
        }
        let cand = Worst { score, doc };
        if self.heap.len() < self.limit {
            self.heap.push(cand);
            return;
        }
        if let Some(worst) = self.heap.peek() {
            // `cand < worst` under the Worst order means `cand` ranks
            // strictly better than the current worst retained candidate.
            if cand < *worst {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    /// Drains into a best-first list (score descending, doc id ascending).
    pub fn into_ranked(self) -> Vec<(usize, f32)> {
        let mut out: Vec<(usize, f32)> = self.heap.into_iter().map(|w| (w.doc, w.score)).collect();
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Inverted index over normalized TF-IDF vectors for fast top-N cosine
/// queries (vectors are unit-length, so cosine = dot product).
pub struct CosineIndex {
    postings: HashMap<usize, Vec<(usize, f32)>>,
    n_docs: usize,
}

impl CosineIndex {
    /// Builds an index over pre-transformed document vectors.
    pub fn build(vectors: &[SparseVec]) -> Self {
        let mut postings: HashMap<usize, Vec<(usize, f32)>> = HashMap::new();
        for (doc, v) in vectors.iter().enumerate() {
            for &(term, w) in v.entries() {
                postings.entry(term).or_default().push((doc, w));
            }
        }
        Self { postings, n_docs: vectors.len() }
    }

    /// Returns up to `n` document ids with the highest cosine similarity to
    /// `query`, best first. Ties break toward the lower doc id so results
    /// are deterministic. Selection uses a bounded min-heap over the M
    /// scored docs — O(M log n) instead of sorting all M.
    pub fn top_n(&self, query: &SparseVec, n: usize) -> Vec<(usize, f32)> {
        let mut scores: HashMap<usize, f32> = HashMap::new();
        for &(term, qw) in query.entries() {
            if let Some(posting) = self.postings.get(&term) {
                for &(doc, dw) in posting {
                    *scores.entry(doc).or_default() += qw * dw;
                }
            }
        }
        let mut select = TopSelect::new(n);
        for (doc, score) in scores {
            select.offer(doc, score);
        }
        select.into_ranked()
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn sparse_vec_merges_duplicates_and_sorts() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 1.5)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn sparse_dot_and_cosine() {
        let a = SparseVec::from_pairs(vec![(0, 1.0), (2, 2.0)]);
        let b = SparseVec::from_pairs(vec![(2, 3.0), (5, 1.0)]);
        assert_eq!(a.dot(&b), 6.0);
        let c = a.cosine(&b);
        assert!(c > 0.0 && c < 1.0);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tfidf_downweights_common_terms() {
        let docs = vec![toks("apple pie"), toks("apple tart"), toks("apple crumble")];
        let tfidf = TfIdf::fit(&docs);
        assert!(
            tfidf.idf_of("apple").expect("apple is in corpus")
                < tfidf.idf_of("pie").expect("pie is in corpus")
        );
        assert_eq!(tfidf.vocab_size(), 4);
        assert_eq!(tfidf.n_docs(), 3);
    }

    #[test]
    fn transform_is_unit_length() {
        let docs = vec![toks("a b c"), toks("b c d")];
        let tfidf = TfIdf::fit(&docs);
        let v = tfidf.transform(&toks("a b b"));
        assert!((v.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn unseen_terms_are_ignored() {
        let tfidf = TfIdf::fit(&[toks("a b")]);
        let v = tfidf.transform(&toks("zzz yyy"));
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    fn index_top_n_ranks_exact_match_first() {
        let docs = vec![
            toks("canon eos camera"),
            toks("nikon dslr camera"),
            toks("sony mirrorless camera"),
        ];
        let tfidf = TfIdf::fit(&docs);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = CosineIndex::build(&vecs);
        let hits = index.top_n(&tfidf.transform(&toks("canon eos camera")), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 0);
        assert!(hits[0].1 > hits[1].1);
    }

    /// Regression pin for the bounded-heap select: against a corpus full of
    /// exact ties, the heap must keep the *lowest* doc ids (the same answer
    /// the old full sort gave) in best-first order, for every cutoff.
    #[test]
    fn heap_select_matches_full_sort_on_ties() {
        let docs: Vec<Vec<String>> =
            (0..17).map(|i| toks(if i % 2 == 0 { "x y" } else { "x y z" })).collect();
        let tfidf = TfIdf::fit(&docs);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = CosineIndex::build(&vecs);
        let query = tfidf.transform(&toks("x y"));
        // Reference: score everything, full sort with the documented order.
        let mut reference: Vec<(usize, f32)> =
            vecs.iter().map(|v| query.dot(v)).enumerate().collect();
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for n in [1, 2, 5, 9, 17, 40] {
            let hits = index.top_n(&query, n);
            let want: Vec<(usize, f32)> = reference.iter().copied().take(n).collect();
            assert_eq!(hits, want, "top_n({n}) diverged from full-sort reference");
        }
    }

    #[test]
    fn streaming_builder_matches_batch_fit() {
        let docs = vec![toks("apple pie"), toks("apple tart"), toks("cherry pie pie")];
        let batch = TfIdf::fit(&docs);
        let mut b = TfIdfBuilder::new();
        for d in &docs {
            b.add_doc(d);
        }
        let streamed = b.finish();
        assert_eq!(batch.vocab_size(), streamed.vocab_size());
        assert_eq!(batch.n_docs(), streamed.n_docs());
        assert_eq!(batch.doc_freqs(), streamed.doc_freqs());
        for d in &docs {
            assert_eq!(batch.transform(d), streamed.transform(d));
        }
    }

    #[test]
    fn doc_freqs_count_each_doc_once() {
        let docs = vec![toks("a a a b"), toks("a c")];
        let tfidf = TfIdf::fit(&docs);
        // Term ids are assigned in first-seen order: a=0, b=1, c=2.
        assert_eq!(tfidf.doc_freqs(), &[2, 1, 1]);
    }

    #[test]
    fn index_is_deterministic_on_ties() {
        let docs = vec![toks("x y"), toks("x y")];
        let tfidf = TfIdf::fit(&docs);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = CosineIndex::build(&vecs);
        let hits = index.top_n(&tfidf.transform(&toks("x y")), 2);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }
}
