//! Hash-bucket vocabulary with reserved special tokens.
//!
//! The miniature language models (`hiergat-lm`) cannot afford a 50k-entry
//! WordPiece vocabulary, so tokens are mapped to a fixed number of hash
//! buckets (feature hashing). Rare brand-specific tokens like "coolmax" or
//! "tp-link" — which GloVe would collapse to `UNK` (§4.1 of the paper) —
//! still receive distinct, stable embeddings with high probability.

/// Special tokens occupying the first ids of every vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Special {
    /// Padding (unused by the unbatched models but reserved for stability).
    Pad = 0,
    /// Classification token prepended to every serialized sequence.
    Cls = 1,
    /// Separator between segments, as in `[CLS] a [SEP] b [SEP]`.
    Sep = 2,
    /// Mask token for the masked-token pre-training objective.
    Mask = 3,
    /// Placeholder for missing attribute values (the paper fills missing
    /// attributes with the literal word "NAN", §2).
    Nan = 4,
}

/// Number of reserved special-token ids.
pub const NUM_SPECIAL: usize = 5;

/// FNV-1a 64-bit hash (stable across runs and platforms).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A hashing vocabulary: token -> bucket id in `[NUM_SPECIAL, size)`.
#[derive(Debug, Clone)]
pub struct HashVocab {
    size: usize,
}

impl HashVocab {
    /// Creates a vocabulary with `size` total ids (including the reserved
    /// specials).
    ///
    /// # Panics
    /// Panics if `size` does not leave room for the special tokens.
    pub fn new(size: usize) -> Self {
        assert!(size > NUM_SPECIAL * 2, "vocab size {size} too small");
        Self { size }
    }

    /// Total number of ids.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Maps a token to its bucket id. The special word "nan" maps to the
    /// reserved [`Special::Nan`] id.
    pub fn id(&self, token: &str) -> usize {
        if token.eq_ignore_ascii_case("nan") {
            return Special::Nan as usize;
        }
        let h = fnv1a(token.as_bytes());
        NUM_SPECIAL + (h as usize) % (self.size - NUM_SPECIAL)
    }

    /// Id of a special token.
    pub fn special(&self, s: Special) -> usize {
        s as usize
    }

    /// Maps every token of a slice.
    pub fn ids(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_in_range() {
        let v = HashVocab::new(1000);
        let a = v.id("photoshop");
        assert_eq!(a, v.id("photoshop"));
        assert!((NUM_SPECIAL..1000).contains(&a));
    }

    #[test]
    fn distinct_tokens_usually_get_distinct_ids() {
        let v = HashVocab::new(1 << 14);
        let words = ["adobe", "apple", "spark", "cluster", "coolmax", "tp", "link"];
        let ids: std::collections::HashSet<_> = words.iter().map(|w| v.id(w)).collect();
        assert_eq!(ids.len(), words.len());
    }

    #[test]
    fn nan_maps_to_reserved_id() {
        let v = HashVocab::new(100);
        assert_eq!(v.id("NAN"), Special::Nan as usize);
        assert_eq!(v.id("nan"), Special::Nan as usize);
    }

    #[test]
    fn specials_are_distinct_and_leading() {
        let v = HashVocab::new(100);
        let all = [Special::Pad, Special::Cls, Special::Sep, Special::Mask, Special::Nan];
        let ids: Vec<_> = all.iter().map(|&s| v.special(s)).collect();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), all.len());
        assert!(ids.iter().all(|&i| i < NUM_SPECIAL));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_vocab() {
        HashVocab::new(6);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("") must be the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
