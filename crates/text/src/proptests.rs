//! Property-based tests for tokenization, similarity, and TF-IDF.

use crate::{
    jaccard, jaro, jaro_winkler, levenshtein, levenshtein_sim, tokenize, CosineIndex, HashVocab,
    TfIdf,
};
use proptest::prelude::*;

fn arb_word() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,8}"
}

fn arb_words() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(arb_word(), 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tokenization is idempotent: re-tokenizing the joined tokens gives the
    /// same tokens.
    #[test]
    fn tokenize_is_idempotent(words in arb_words()) {
        let text = words.join(" ");
        let once = tokenize(&text);
        let twice = tokenize(&once.join(" "));
        prop_assert_eq!(once, twice);
    }

    /// Tokens never contain whitespace, and any remaining "uppercase"
    /// character has no lowercase mapping (e.g. U+1D400 MATHEMATICAL BOLD
    /// CAPITAL A, which `char::to_lowercase` leaves unchanged).
    #[test]
    fn tokens_are_normalized(s in ".{0,40}") {
        for tok in tokenize(&s) {
            prop_assert!(!tok.is_empty());
            prop_assert!(!tok.chars().any(char::is_whitespace));
            for c in tok.chars().filter(|c| c.is_uppercase()) {
                prop_assert!(
                    c.to_lowercase().next() == Some(c),
                    "lowercasable char {c:?} survived tokenization"
                );
            }
        }
    }

    /// Levenshtein is a metric: symmetry and identity-of-indiscernibles.
    #[test]
    fn levenshtein_is_symmetric_with_zero_diagonal(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        // Triangle-ish sanity: distance bounded by the longer string.
        prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    /// Similarities live in [0, 1] and self-similarity is 1.
    #[test]
    fn similarities_are_bounded(a in "[a-z]{1,10}", b in "[a-z]{1,10}") {
        for sim in [
            levenshtein_sim(&a, &b),
            jaro(&a, &b),
            jaro_winkler(&a, &b),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&sim), "{sim}");
        }
        prop_assert!((levenshtein_sim(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// Jaccard is symmetric and bounded.
    #[test]
    fn jaccard_symmetric_bounded(a in arb_words(), b in arb_words()) {
        let j1 = jaccard(&a, &b);
        let j2 = jaccard(&b, &a);
        prop_assert!((j1 - j2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&j1));
    }

    /// Hash-vocabulary ids are always within bounds and stable.
    #[test]
    fn vocab_ids_in_range(words in arb_words(), size in 32usize..4096) {
        let v = HashVocab::new(size.max(32));
        for w in &words {
            let id = v.id(w);
            prop_assert!(id < v.size());
            prop_assert_eq!(id, v.id(w));
        }
    }

    /// A TF-IDF index always ranks an exact duplicate document first.
    #[test]
    fn tfidf_self_retrieval(mut docs in proptest::collection::vec(arb_words(), 2..8)) {
        // Ensure every doc is non-empty and the query doc is unique enough.
        for (i, d) in docs.iter_mut().enumerate() {
            d.push(format!("uniq{i}"));
        }
        let tfidf = TfIdf::fit(&docs);
        let vectors: Vec<_> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = CosineIndex::build(&vectors);
        for (i, d) in docs.iter().enumerate() {
            let hits = index.top_n(&tfidf.transform(d), 1);
            prop_assert_eq!(hits[0].0, i, "doc {} must retrieve itself first", i);
        }
    }
}
