//! FastText-style static word embeddings.
//!
//! DeepMatcher (§6.1 of the paper) uses fixed 300-dimensional FastText
//! vectors; this module reproduces the mechanism at reduced dimension: each
//! word's vector is the average of a whole-word hash-bucket vector and its
//! character n-gram bucket vectors, so out-of-vocabulary words ("coolmax",
//! "tp-link") still receive informative, compositional embeddings (§4.1).

use crate::vocab::fnv1a;
use hiergat_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Character n-grams of a word, padded with `<` and `>` like FastText.
pub fn char_ngrams(word: &str, n_min: usize, n_max: usize) -> Vec<String> {
    let padded: Vec<char> =
        std::iter::once('<').chain(word.chars()).chain(std::iter::once('>')).collect();
    let mut grams = Vec::new();
    for n in n_min..=n_max {
        if padded.len() < n {
            break;
        }
        for start in 0..=padded.len() - n {
            grams.push(padded[start..start + n].iter().collect());
        }
    }
    grams
}

/// Deterministic hashed word + n-gram embedding table.
pub struct StaticHashEmbedding {
    dim: usize,
    word_buckets: usize,
    ngram_buckets: usize,
    /// `(word_buckets + ngram_buckets) x dim`, seeded once and never trained.
    table: Tensor,
}

impl StaticHashEmbedding {
    /// Builds a table with the given bucket counts; `seed` fixes the vectors.
    pub fn new(dim: usize, word_buckets: usize, ngram_buckets: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = Tensor::rand_normal(
            word_buckets + ngram_buckets,
            dim,
            0.0,
            1.0 / (dim as f32).sqrt(),
            &mut rng,
        );
        Self { dim, word_buckets, ngram_buckets, table }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding of one word: whole-word vector averaged with its 3–5
    /// character n-gram vectors.
    pub fn embed(&self, word: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut count = 0usize;
        let word_row = (fnv1a(word.as_bytes()) as usize) % self.word_buckets;
        for (a, v) in acc.iter_mut().zip(self.table.row(word_row)) {
            *a += v;
        }
        count += 1;
        for gram in char_ngrams(word, 3, 5) {
            let row = self.word_buckets + (fnv1a(gram.as_bytes()) as usize) % self.ngram_buckets;
            for (a, v) in acc.iter_mut().zip(self.table.row(row)) {
                *a += v;
            }
            count += 1;
        }
        for a in &mut acc {
            *a /= count as f32;
        }
        acc
    }

    /// Embeds a token sequence into an `n x dim` tensor.
    pub fn embed_sequence(&self, tokens: &[String]) -> Tensor {
        if tokens.is_empty() {
            return Tensor::zeros(0, self.dim);
        }
        Tensor::stack_rows(tokens.len(), self.dim, |i| self.embed(&tokens[i]))
    }

    /// Cosine similarity of two word embeddings (diagnostics/tests).
    pub fn cosine(&self, a: &str, b: &str) -> f32 {
        let va = Tensor::row_vector(&self.embed(a));
        let vb = Tensor::row_vector(&self.embed(b));
        let denom = va.norm() * vb.norm();
        if denom == 0.0 {
            0.0
        } else {
            va.dot(&vb) / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngrams_are_padded() {
        let grams = char_ngrams("cat", 3, 3);
        assert_eq!(grams, vec!["<ca", "cat", "at>"]);
    }

    #[test]
    fn ngrams_cover_requested_range() {
        let grams = char_ngrams("spark", 3, 5);
        assert!(grams.contains(&"<sp".to_string()));
        assert!(grams.contains(&"spark".to_string()));
        assert!(grams.contains(&"park>".to_string()));
    }

    #[test]
    fn short_words_produce_some_ngrams() {
        assert!(!char_ngrams("ab", 3, 5).is_empty()); // "<ab", "ab>", "<ab>"...
    }

    #[test]
    fn embedding_is_deterministic() {
        let e1 = StaticHashEmbedding::new(8, 64, 64, 7);
        let e2 = StaticHashEmbedding::new(8, 64, 64, 7);
        assert_eq!(e1.embed("photoshop"), e2.embed("photoshop"));
    }

    #[test]
    fn morphologically_close_words_are_closer_than_random() {
        let e = StaticHashEmbedding::new(16, 256, 256, 3);
        let close = e.cosine("photoshop", "photoshopp");
        let far = e.cosine("photoshop", "zebra");
        assert!(close > far, "shared n-grams must pull vectors together ({close} vs {far})");
    }

    #[test]
    fn sequence_embedding_shape() {
        let e = StaticHashEmbedding::new(8, 64, 64, 1);
        let toks: Vec<String> = ["a", "b", "c"].iter().map(ToString::to_string).collect();
        assert_eq!(e.embed_sequence(&toks).shape(), (3, 8));
        assert_eq!(e.embed_sequence(&[]).shape(), (0, 8));
    }

    #[test]
    fn oov_words_get_nonzero_vectors() {
        let e = StaticHashEmbedding::new(8, 64, 64, 2);
        let v = e.embed("coolmax");
        assert!(v.iter().any(|&x| x != 0.0));
    }
}
