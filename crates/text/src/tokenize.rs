//! Tokenization.
//!
//! Entity attribute values are free text ("Adobe Photoshop Elements 5.0 Win
//! 32-bit", "$49.99"); the tokenizer lowercases and splits into alphanumeric
//! runs, keeping digits and decimal points inside numbers so prices and model
//! numbers survive as single discriminative tokens.

/// Configurable whitespace/punctuation tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Lowercase all tokens (default true).
    pub lowercase: bool,
    /// Maximum tokens to keep per text (0 = unlimited).
    pub max_tokens: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self { lowercase: true, max_tokens: 0 }
    }
}

impl Tokenizer {
    /// Creates a tokenizer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tokenizer that truncates to `max_tokens` tokens.
    pub fn with_max_tokens(max_tokens: usize) -> Self {
        Self { max_tokens, ..Self::default() }
    }

    /// Splits `text` into tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut current = String::new();
        let mut prev_is_digit = false;
        for ch in text.chars() {
            let is_word = ch.is_alphanumeric();
            // Keep '.' and ',' inside numbers ("5.0", "1,299") but not words.
            let is_numeric_joint = (ch == '.' || ch == ',') && prev_is_digit;
            if is_word || is_numeric_joint {
                if self.lowercase {
                    current.extend(ch.to_lowercase());
                } else {
                    current.push(ch);
                }
                prev_is_digit = ch.is_ascii_digit();
            } else {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                    if self.max_tokens > 0 && tokens.len() == self.max_tokens {
                        return tokens;
                    }
                }
                prev_is_digit = false;
            }
        }
        if !current.is_empty() && (self.max_tokens == 0 || tokens.len() < self.max_tokens) {
            // Trim a trailing numeric joiner ("5." -> "5").
            while current.ends_with('.') || current.ends_with(',') {
                current.pop();
            }
            if !current.is_empty() {
                tokens.push(current);
            }
        }
        tokens
    }
}

/// Convenience: tokenize with default settings.
pub fn tokenize(text: &str) -> Vec<String> {
    Tokenizer::new().tokenize(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(tokenize("Adobe Photoshop, Elements!"), vec!["adobe", "photoshop", "elements"]);
    }

    #[test]
    fn keeps_decimal_numbers_together() {
        assert_eq!(tokenize("version 5.0 costs $49.99"), vec!["version", "5.0", "costs", "49.99"]);
    }

    #[test]
    fn model_numbers_survive() {
        assert_eq!(tokenize("TP-Link AC1750"), vec!["tp", "link", "ac1750"]);
    }

    #[test]
    fn trailing_period_is_not_part_of_number() {
        assert_eq!(tokenize("costs 49."), vec!["costs", "49"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn max_tokens_truncates() {
        let t = Tokenizer::with_max_tokens(2);
        assert_eq!(t.tokenize("a b c d"), vec!["a", "b"]);
    }

    #[test]
    fn unicode_is_handled() {
        assert_eq!(tokenize("Café Crème"), vec!["café", "crème"]);
    }

    #[test]
    fn case_preserving_mode() {
        let t = Tokenizer { lowercase: false, max_tokens: 0 };
        assert_eq!(t.tokenize("Adobe"), vec!["Adobe"]);
    }
}
