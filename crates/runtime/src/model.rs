//! [`ErModel`]: the unified trait over every tape-recording ER model.
//!
//! The trait subsumes the per-crate surfaces (`HierGat`'s inherent methods,
//! `hiergat_baselines::PairModel` / `CollectiveErModel`): scoring-graph
//! recording for the inference engine, eager reference prediction, the
//! static-analysis triple (analyze / lint / plan), and the decision
//! threshold. Pairwise and collective models share it; [`Example`] carries
//! the input either way and [`ModelKind`] tells callers which side a model
//! expects.

use hiergat::HierGat;
use hiergat_baselines::traits::{CollectiveErModel, PairModel};
use hiergat_baselines::{DeepMatcher, Ditto, DmPlus, GnnCollective};
use hiergat_data::{CollectiveExample, EntityPair};
use hiergat_nn::{
    audit_graph, lint_graph, optimize, AbsintConfig, AuditReport, ExecutionPlan, GraphReport,
    LintConfig, LintReport, OptimizeConfig, OptimizeReport, ParamStore, PlanReport, Tape, Var,
};

/// Whether a model scores independent pairs or whole candidate sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// One `(left, right)` entity pair per scoring call.
    Pairwise,
    /// One query plus its candidate set per scoring call (§6.3).
    Collective,
}

/// One scoring input, borrowed from the caller. Copyable so batches can be
/// fanned out across worker threads without cloning entities.
#[derive(Clone, Copy)]
pub enum Example<'a> {
    /// Input for a [`ModelKind::Pairwise`] model.
    Pair(&'a EntityPair),
    /// Input for a [`ModelKind::Collective`] model.
    Collective(&'a CollectiveExample),
}

impl<'a> Example<'a> {
    /// Number of match probabilities this example yields (1 for a pair,
    /// one per candidate for a collective example).
    pub fn n_outputs(&self) -> usize {
        match self {
            Self::Pair(_) => 1,
            Self::Collective(ex) => ex.candidates.len(),
        }
    }

    /// The pair, panicking if a collective example was routed to a
    /// pairwise model (a registry/driver wiring bug, not a data error).
    pub fn expect_pair(&self) -> &'a EntityPair {
        match self {
            Self::Pair(p) => p,
            Self::Collective(_) => panic!("pairwise model given a collective example"),
        }
    }

    /// The collective example, panicking on a pairwise input.
    pub fn expect_collective(&self) -> &'a CollectiveExample {
        match self {
            Self::Collective(ex) => ex,
            Self::Pair(_) => panic!("collective model given a pairwise example"),
        }
    }
}

/// A tape-recording ER model behind one uniform surface.
///
/// `Send + Sync` is required so `Box<dyn ErModel>` sessions can fan
/// [`record_scores`](Self::record_scores) out across the thread pool
/// (recording is `&self`; the parameter store is read-only at inference).
pub trait ErModel: Send + Sync {
    /// Which example side this model consumes.
    fn kind(&self) -> ModelKind;

    /// The parameter store (read-only at inference; the arena executor
    /// resolves placeholder parameter nodes against it).
    fn params(&self) -> &ParamStore;

    /// Records the eval-mode scoring graph onto `t` and returns the
    /// `n_outputs x 2` softmax-probability node — exactly the graph the
    /// model's eager `predict_*` path evaluates (same RNG seeding, eval
    /// mode). Works on any tape kind: eager tapes compute it in place,
    /// [`Tape::inference`] tapes replay it through a forward-only arena
    /// plan bitwise-identically.
    fn record_scores(&self, t: &mut Tape, ex: Example<'_>) -> Var;

    /// Eager reference scores (match probability per output) — the values
    /// any other execution path must reproduce bitwise.
    fn predict(&self, ex: Example<'_>) -> Vec<f32>;

    /// Static shape/liveness/gradient analysis of the training graph.
    fn analyze(&self, ex: Example<'_>) -> GraphReport;

    /// Rule-engine lint of the training graph.
    fn lint_training(&self, ex: Example<'_>) -> LintReport;

    /// Arena memory plan of the training graph (forward + backward
    /// liveness).
    fn plan_training(&self, ex: Example<'_>) -> PlanReport;

    /// Validation-tuned decision threshold; 0.5 until tuned.
    fn decision_threshold(&self) -> f32 {
        0.5
    }

    /// Stores a tuned decision threshold. Models that do not persist one
    /// (the baselines) ignore it — sessions carry their own copy.
    fn set_decision_threshold(&mut self, _threshold: f32) {}

    /// Rule-engine lint of the *inference* scoring graph under eval-mode
    /// rules (`dropout-in-eval` et al.). Inference tapes elide dropout at
    /// record time, so a clean report here certifies the session graph.
    fn lint_inference(&self, ex: Example<'_>) -> LintReport {
        let mut t = Tape::shape_only();
        let probs = self.record_scores(&mut t, ex);
        lint_graph(&t, probs, self.params(), &LintConfig::eval())
    }

    /// Interval abstract-interpretation audit of the inference scoring
    /// graph: proven per-node value ranges, overflow/underflow/NaN-risk
    /// findings, and the quantisation feasibility table, under the given
    /// seeding (symbolic input boxes, or [`AbsintConfig::weight_aware`]
    /// to read concrete per-parameter ranges from this model's store —
    /// load a checkpoint first for weight-aware proofs).
    fn audit(&self, ex: Example<'_>, cfg: &AbsintConfig) -> AuditReport {
        let mut t = Tape::shape_only();
        let probs = self.record_scores(&mut t, ex);
        audit_graph(&t, probs, self.params(), cfg)
    }

    /// Arena memory plan of the inference scoring graph (forward-only
    /// liveness: no gradient slots, no backward keep-alives), as the
    /// session executes it — i.e. after the certified tape optimiser has
    /// rewritten the recorded graph (sessions optimise by default).
    fn plan_inference(&self, ex: Example<'_>) -> PlanReport {
        let mut t = Tape::inference();
        let probs = self.record_scores(&mut t, ex);
        let opt = optimize(&t, probs, self.params(), &OptimizeConfig::default());
        ExecutionPlan::build_inference(&opt.tape, opt.root).report().clone()
    }

    /// Runs the certified tape optimiser over the inference scoring graph
    /// and returns its report: node/FLOP counts before and after, per-pass
    /// rewrite tallies, and one certificate per applied rewrite. With
    /// `verify`, every certificate additionally carries an interval
    /// containment proof (observed seeding) and the run falls back to an
    /// identity copy if any certificate fails to validate.
    fn optimize_report(&self, ex: Example<'_>, verify: bool) -> OptimizeReport {
        let cfg = if verify { OptimizeConfig::verified() } else { OptimizeConfig::default() };
        let mut t = Tape::inference();
        let probs = self.record_scores(&mut t, ex);
        optimize(&t, probs, self.params(), &cfg).report
    }
}

/// HierGAT in pairwise mode (the §4 architecture on entity pairs).
pub struct HierGatPairwise(pub HierGat);

impl ErModel for HierGatPairwise {
    fn kind(&self) -> ModelKind {
        ModelKind::Pairwise
    }
    fn params(&self) -> &ParamStore {
        &self.0.ps
    }
    fn record_scores(&self, t: &mut Tape, ex: Example<'_>) -> Var {
        self.0.record_pair_scores(t, ex.expect_pair())
    }
    fn predict(&self, ex: Example<'_>) -> Vec<f32> {
        vec![self.0.predict_pair(ex.expect_pair())]
    }
    fn analyze(&self, ex: Example<'_>) -> GraphReport {
        self.0.analyze_pair(ex.expect_pair())
    }
    fn lint_training(&self, ex: Example<'_>) -> LintReport {
        self.0.lint_pair(ex.expect_pair())
    }
    fn plan_training(&self, ex: Example<'_>) -> PlanReport {
        self.0.plan_pair(ex.expect_pair())
    }
    fn decision_threshold(&self) -> f32 {
        self.0.decision_threshold()
    }
    fn set_decision_threshold(&mut self, threshold: f32) {
        self.0.set_decision_threshold(threshold);
    }
}

/// HierGAT+ in collective mode (candidate-set batches, §6.3).
pub struct HierGatCollective(pub HierGat);

impl ErModel for HierGatCollective {
    fn kind(&self) -> ModelKind {
        ModelKind::Collective
    }
    fn params(&self) -> &ParamStore {
        &self.0.ps
    }
    fn record_scores(&self, t: &mut Tape, ex: Example<'_>) -> Var {
        self.0.record_collective_scores(t, ex.expect_collective())
    }
    fn predict(&self, ex: Example<'_>) -> Vec<f32> {
        self.0.predict_collective(ex.expect_collective())
    }
    fn analyze(&self, ex: Example<'_>) -> GraphReport {
        self.0.analyze_collective(ex.expect_collective())
    }
    fn lint_training(&self, ex: Example<'_>) -> LintReport {
        self.0.lint_collective(ex.expect_collective())
    }
    fn plan_training(&self, ex: Example<'_>) -> PlanReport {
        self.0.plan_collective(ex.expect_collective())
    }
    fn decision_threshold(&self) -> f32 {
        self.0.decision_threshold()
    }
    fn set_decision_threshold(&mut self, threshold: f32) {
        self.0.set_decision_threshold(threshold);
    }
}

impl ErModel for Ditto {
    fn kind(&self) -> ModelKind {
        ModelKind::Pairwise
    }
    fn params(&self) -> &ParamStore {
        PairModel::params(self)
    }
    fn record_scores(&self, t: &mut Tape, ex: Example<'_>) -> Var {
        self.record_pair_scores(t, ex.expect_pair())
    }
    fn predict(&self, ex: Example<'_>) -> Vec<f32> {
        vec![PairModel::predict_pair(self, ex.expect_pair())]
    }
    fn analyze(&self, ex: Example<'_>) -> GraphReport {
        Ditto::analyze(self, ex.expect_pair())
    }
    fn lint_training(&self, ex: Example<'_>) -> LintReport {
        Ditto::lint(self, ex.expect_pair())
    }
    fn plan_training(&self, ex: Example<'_>) -> PlanReport {
        Ditto::plan(self, ex.expect_pair())
    }
}

impl ErModel for DeepMatcher {
    fn kind(&self) -> ModelKind {
        ModelKind::Pairwise
    }
    fn params(&self) -> &ParamStore {
        PairModel::params(self)
    }
    fn record_scores(&self, t: &mut Tape, ex: Example<'_>) -> Var {
        self.record_pair_scores(t, ex.expect_pair())
    }
    fn predict(&self, ex: Example<'_>) -> Vec<f32> {
        vec![PairModel::predict_pair(self, ex.expect_pair())]
    }
    fn analyze(&self, ex: Example<'_>) -> GraphReport {
        DeepMatcher::analyze(self, ex.expect_pair())
    }
    fn lint_training(&self, ex: Example<'_>) -> LintReport {
        DeepMatcher::lint(self, ex.expect_pair())
    }
    fn plan_training(&self, ex: Example<'_>) -> PlanReport {
        DeepMatcher::plan(self, ex.expect_pair())
    }
}

impl ErModel for DmPlus {
    fn kind(&self) -> ModelKind {
        ModelKind::Pairwise
    }
    fn params(&self) -> &ParamStore {
        PairModel::params(self)
    }
    fn record_scores(&self, t: &mut Tape, ex: Example<'_>) -> Var {
        self.record_pair_scores(t, ex.expect_pair())
    }
    fn predict(&self, ex: Example<'_>) -> Vec<f32> {
        vec![PairModel::predict_pair(self, ex.expect_pair())]
    }
    fn analyze(&self, ex: Example<'_>) -> GraphReport {
        DmPlus::analyze(self, ex.expect_pair())
    }
    fn lint_training(&self, ex: Example<'_>) -> LintReport {
        DmPlus::lint(self, ex.expect_pair())
    }
    fn plan_training(&self, ex: Example<'_>) -> PlanReport {
        DmPlus::plan(self, ex.expect_pair())
    }
}

impl ErModel for GnnCollective {
    fn kind(&self) -> ModelKind {
        ModelKind::Collective
    }
    fn params(&self) -> &ParamStore {
        CollectiveErModel::params(self)
    }
    fn record_scores(&self, t: &mut Tape, ex: Example<'_>) -> Var {
        self.record_example_scores(t, ex.expect_collective())
    }
    fn predict(&self, ex: Example<'_>) -> Vec<f32> {
        CollectiveErModel::predict_example(self, ex.expect_collective())
    }
    fn analyze(&self, ex: Example<'_>) -> GraphReport {
        GnnCollective::analyze(self, ex.expect_collective())
    }
    fn lint_training(&self, ex: Example<'_>) -> LintReport {
        GnnCollective::lint(self, ex.expect_collective())
    }
    fn plan_training(&self, ex: Example<'_>) -> PlanReport {
        GnnCollective::plan(self, ex.expect_collective())
    }
}
