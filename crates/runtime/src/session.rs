//! [`Session`]: a model plus its tuned threshold plus cached inference
//! plans, behind a batched scoring API.
//!
//! A session records each example's eval-mode scoring graph on a
//! forward-only tape ([`Tape::inference`]), runs the certified tape
//! optimiser over it (DCE / CSE / constant folding / fusion, every default
//! rewrite bitwise-exact — see `hiergat_nn::optimize`), and replays the
//! result through the arena executor's cached inference plans: parameters
//! enter as placeholders (no per-call weight cloning, unlike eager tapes)
//! and node values live in one planned arena (no per-node heap allocation).
//! Scores are bitwise identical to the model's eager `predict` path — same
//! kernels, same evaluation order on the surviving nodes — so a session is
//! a drop-in, faster scorer. [`Session::set_optimize`] restores the
//! as-recorded replay.
//!
//! [`Session::score_batch`] fans examples out over the `parallel` pool
//! (`HIERGAT_THREADS` governs the width). Each worker slot keeps its own
//! [`ArenaExecutor`] whose plan cache persists across calls; every example
//! is scored independently, so results never depend on the chunk geometry
//! and a 1-thread and an 8-thread run are bitwise identical.

use crate::model::{ErModel, Example};
use hiergat_nn::{
    optimize_with_cache, ArenaExecutor, OptimizeConfig, OptimizerCache, QuantConfig, QuantError,
    QuantExecutor, QuantPlan, QuantStore, QuantStoreReport, Tape,
};
use std::sync::Mutex;

/// An inference session over one model.
pub struct Session {
    model: Box<dyn ErModel>,
    threshold: f32,
    exec: ArenaExecutor,
    cache: OptimizerCache,
    workers: Vec<(ArenaExecutor, OptimizerCache)>,
    optimize: bool,
    quant: Option<QuantState>,
}

/// Quantised-session state: the immutable audit-driven weight store plus
/// per-thread executors (the serial one and one per batch-worker slot),
/// mirroring the f32 worker layout.
struct QuantState {
    store: QuantStore,
    exec: QuantExecutor,
    workers: Vec<QuantExecutor>,
}

/// What [`Session::quantise`] did: weight-byte accounting from the
/// rejecting quantiser plus the arena footprint of the quantised plan for
/// the priming example's graph shape, next to the f32 plan it replaces.
#[derive(Debug, Clone, Copy)]
pub struct QuantReport {
    /// Per-parameter class counts and byte totals.
    pub weights: QuantStoreReport,
    /// Class-arena bytes of the quantised inference plan.
    pub arena_bytes: u64,
    /// Arena bytes of the f32 inference plan for the same graph shape.
    pub f32_arena_bytes: u64,
    /// Live activation nodes stored `(int8, f16, f32)`.
    pub class_nodes: (usize, usize, usize),
}

/// Records `ex`'s scoring graph on an inference tape, optionally runs the
/// certified tape optimiser over it, and replays the result through `exec`,
/// returning the match probability per output. Every default-config rewrite
/// is bitwise-exact, so the optimised replay still matches eager `predict`.
fn score_one(
    model: &dyn ErModel,
    exec: &mut ArenaExecutor,
    cache: &mut OptimizerCache,
    ex: Example<'_>,
    optimized: bool,
) -> Vec<f32> {
    let n = ex.n_outputs();
    let mut t = Tape::inference();
    let probs = model.record_scores(&mut t, ex);
    // The probability node is row-major `n x 2`; column 1 is P(match).
    let mut buf = vec![0.0f32; n * 2];
    if optimized {
        // The cached-tape fast path: after the first example of a given
        // record geometry, the optimiser skips planning and emission
        // entirely — it revalidates its cached decisions against the fresh
        // tape, patches the fresh inputs/payloads into the cached optimised
        // tape, and hands that back (no certificate records; shape checks
        // still run). The recorded tape is discarded here either way.
        let opt = optimize_with_cache(cache, t, probs, model.params(), &OptimizeConfig::hot());
        exec.infer_into(opt.tape, opt.root, model.params(), &mut buf);
    } else {
        exec.infer_into(&t, probs, model.params(), &mut buf);
    }
    (0..n).map(|i| buf[i * 2 + 1]).collect()
}

/// The quantised twin of [`score_one`]: replays the as-recorded inference
/// tape through the class-arena executor. The certified tape optimiser is
/// deliberately skipped — its certificates prove f32 bitwise semantics,
/// which lossy stores void — so the quantised path behaves identically
/// whatever [`Session::set_optimize`] says.
fn score_one_quant(
    model: &dyn ErModel,
    exec: &mut QuantExecutor,
    qstore: &QuantStore,
    ex: Example<'_>,
) -> Vec<f32> {
    let n = ex.n_outputs();
    let mut t = Tape::inference();
    let probs = model.record_scores(&mut t, ex);
    let mut buf = vec![0.0f32; n * 2];
    exec.infer_into(&t, probs, model.params(), qstore, &mut buf)
        .expect("quantised inference on an audited model");
    (0..n).map(|i| buf[i * 2 + 1]).collect()
}

impl Session {
    /// Wraps a model, adopting its persisted decision threshold. The
    /// certified tape optimiser is on by default; see [`Self::set_optimize`].
    pub fn new(model: Box<dyn ErModel>) -> Self {
        let threshold = model.decision_threshold();
        Self {
            model,
            threshold,
            exec: ArenaExecutor::new(),
            cache: OptimizerCache::default(),
            workers: Vec::new(),
            optimize: true,
            quant: None,
        }
    }

    /// Quantises the session's weights post-training, driven by the absint
    /// feasibility table: the audit proves a value interval per tensor of
    /// `ex`'s scoring graph, every parameter it classifies int8/f16 is
    /// re-encoded through the rejecting quantiser, and subsequent scoring
    /// replays tapes through the class-arena executor (dequant-free int8
    /// matmul where both operands are int8). Fails — leaving the session
    /// un-quantised — if the audit finds numerical-safety issues or any
    /// weight escapes its proven interval.
    pub fn quantise(
        &mut self,
        ex: Example<'_>,
        cfg: &QuantConfig,
    ) -> Result<QuantReport, QuantError> {
        let mut t = Tape::inference();
        let probs = self.model.record_scores(&mut t, ex);
        let (store, _audit) = QuantStore::build(&t, probs, self.model.params(), cfg)?;
        // Prime the plan for this graph shape so the report carries real
        // arena numbers (and the first score call replays instantly).
        let mut exec = QuantExecutor::new();
        let plan: &QuantPlan = exec.plan_for(&t, probs, self.model.params(), &store)?;
        let report = QuantReport {
            weights: store.report(),
            arena_bytes: plan.arena_bytes(),
            f32_arena_bytes: plan.f32_arena_bytes(),
            class_nodes: plan.class_nodes(),
        };
        self.quant = Some(QuantState { store, exec, workers: Vec::new() });
        Ok(report)
    }

    /// Whether scoring goes through the quantised executor.
    pub fn is_quantised(&self) -> bool {
        self.quant.is_some()
    }

    /// Capacity of the quantised serial scoring arenas, in bytes (`None`
    /// until [`Self::quantise`] succeeds).
    pub fn quantised_arena_bytes(&self) -> Option<u64> {
        self.quant.as_ref().map(|q| q.exec.arena_capacity_bytes())
    }

    /// The wrapped model.
    pub fn model(&self) -> &dyn ErModel {
        &*self.model
    }

    /// The session's decision threshold (`score >= threshold` ⇒ match).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Overrides the decision threshold for this session.
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = threshold;
    }

    /// Whether scoring replays the optimised tape (default `true`).
    pub fn optimizes(&self) -> bool {
        self.optimize
    }

    /// Toggles the certified tape optimiser for this session. Optimised and
    /// as-recorded graphs carry distinct plan-cache signatures, so flipping
    /// this mid-session never replays a stale plan. A quantised session
    /// ignores this flag: the optimiser's certificates prove f32 bitwise
    /// semantics, so the quantised path always replays the as-recorded tape.
    pub fn set_optimize(&mut self, optimize: bool) {
        self.optimize = optimize;
    }

    /// Capacity of the serial scoring arena, in bytes (grows to the largest
    /// inference plan seen; 0 before the first call).
    pub fn arena_capacity_bytes(&self) -> u64 {
        self.exec.arena_capacity_bytes()
    }

    /// Scores one example: match probability per output. Bitwise identical
    /// to the model's eager `predict` until [`Self::quantise`], after which
    /// scores come from the quantised executor (within the acceptance
    /// harness's F1 delta of f32, not bitwise).
    pub fn score(&mut self, ex: Example<'_>) -> Vec<f32> {
        if let Some(q) = self.quant.as_mut() {
            return score_one_quant(&*self.model, &mut q.exec, &q.store, ex);
        }
        score_one(&*self.model, &mut self.exec, &mut self.cache, ex, self.optimize)
    }

    /// Interval abstract-interpretation audit of the scoring graph this
    /// session executes (see [`ErModel::audit`]).
    pub fn audit(
        &self,
        ex: Example<'_>,
        cfg: &hiergat_nn::AbsintConfig,
    ) -> hiergat_nn::AuditReport {
        self.model.audit(ex, cfg)
    }

    /// Boolean decisions for one example at the session threshold.
    pub fn decide(&mut self, ex: Example<'_>) -> Vec<bool> {
        let threshold = self.threshold;
        self.score(ex).into_iter().map(|s| s >= threshold).collect()
    }

    /// Scores a batch in parallel over the shared thread pool. Output
    /// order matches input order; values are independent of the pool
    /// width (each example's graph is scored in isolation).
    pub fn score_batch(&mut self, examples: &[Example<'_>]) -> Vec<Vec<f32>> {
        let workers = parallel::current_split().max(1);
        if let Some(q) = self.quant.as_mut() {
            let model = &*self.model;
            let qstore = &q.store;
            if workers == 1 || examples.len() < 2 * workers {
                let exec = &mut q.exec;
                return examples
                    .iter()
                    .map(|ex| score_one_quant(model, exec, qstore, *ex))
                    .collect();
            }
            while q.workers.len() < workers {
                q.workers.push(QuantExecutor::new());
            }
            let mut out: Vec<Vec<f32>> = vec![Vec::new(); examples.len()];
            let chunk = examples.len().div_ceil(workers);
            type QJob<'j, 'e> =
                Mutex<(&'j mut QuantExecutor, &'j mut [Vec<f32>], &'j [Example<'e>])>;
            let jobs: Vec<QJob<'_, '_>> = q
                .workers
                .iter_mut()
                .zip(out.chunks_mut(chunk))
                .zip(examples.chunks(chunk))
                .map(|((worker, slots), exs)| Mutex::new((worker, slots, exs)))
                .collect();
            parallel::run(jobs.len(), |i| {
                let mut job = jobs[i].lock().expect("quantised session job lock");
                let (exec, slots, exs) = &mut *job;
                for (slot, ex) in slots.iter_mut().zip(exs.iter()) {
                    *slot = score_one_quant(model, exec, qstore, *ex);
                }
            });
            return out;
        }
        // Small batches (or a 1-wide pool) run serially on the session's
        // own executor, keeping its plan cache warm.
        if workers == 1 || examples.len() < 2 * workers {
            let model = &*self.model;
            let optimized = self.optimize;
            let (exec, cache) = (&mut self.exec, &mut self.cache);
            return examples
                .iter()
                .map(|ex| score_one(model, exec, cache, *ex, optimized))
                .collect();
        }
        while self.workers.len() < workers {
            self.workers.push((ArenaExecutor::new(), OptimizerCache::default()));
        }
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); examples.len()];
        let chunk = examples.len().div_ceil(workers);
        let model = &*self.model;
        let optimized = self.optimize;
        // One job per worker slot: its persistent executor and optimiser
        // decisions cache plus the slice of outputs/examples it owns. The
        // Mutex hands each spawned task exclusive access to its own job.
        type Worker = (ArenaExecutor, OptimizerCache);
        type Job<'j, 'e> = Mutex<(&'j mut Worker, &'j mut [Vec<f32>], &'j [Example<'e>])>;
        let jobs: Vec<Job<'_, '_>> = self
            .workers
            .iter_mut()
            .zip(out.chunks_mut(chunk))
            .zip(examples.chunks(chunk))
            .map(|((worker, slots), exs)| Mutex::new((worker, slots, exs)))
            .collect();
        parallel::run(jobs.len(), |i| {
            let mut job = jobs[i].lock().expect("session job lock");
            let (worker, slots, exs) = &mut *job;
            let (exec, cache) = &mut **worker;
            for (slot, ex) in slots.iter_mut().zip(exs.iter()) {
                *slot = score_one(model, exec, cache, *ex, optimized);
            }
        });
        out
    }

    /// Convenience over [`Self::score_batch`] for pairwise models: one
    /// match probability per pair.
    pub fn score_pairs(&mut self, pairs: &[hiergat_data::EntityPair]) -> Vec<f32> {
        let examples: Vec<Example<'_>> = pairs.iter().map(Example::Pair).collect();
        self.score_batch(&examples)
            .into_iter()
            .map(|mut v| {
                debug_assert_eq!(v.len(), 1);
                v.pop().unwrap_or_default()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{BuildContext, ModelRegistry};
    use hiergat_data::MagellanDataset;
    use hiergat_lm::LmTier;

    #[test]
    fn session_scores_match_eager_predictions_bitwise() {
        let ds = MagellanDataset::FodorsZagats.load(0.15);
        let pair = ds.train.first().expect("pair");
        let reg = ModelRegistry::builtin();
        let spec = reg.get("hiergat").expect("spec");
        let cx = BuildContext { tier: LmTier::MiniDistil, arity: ds.arity().max(1) };
        let model = spec.build(&cx);
        let eager = model.predict(Example::Pair(pair));
        let mut session = Session::new(model);
        for _ in 0..2 {
            let scored = session.score(Example::Pair(pair));
            assert_eq!(scored.len(), eager.len());
            for (s, e) in scored.iter().zip(&eager) {
                assert_eq!(s.to_bits(), e.to_bits(), "session must match eager bitwise");
            }
        }
        assert!(session.arena_capacity_bytes() > 0);
    }

    #[test]
    fn batch_scores_match_serial_scores_and_preserve_order() {
        let ds = MagellanDataset::FodorsZagats.load(0.15);
        let pairs = &ds.train[..ds.train.len().min(12)];
        let reg = ModelRegistry::builtin();
        let cx = BuildContext { tier: LmTier::MiniDistil, arity: ds.arity().max(1) };
        let mut session = Session::new(reg.get("deepmatcher").expect("spec").build(&cx));
        let batched = session.score_pairs(pairs);
        for (pair, score) in pairs.iter().zip(&batched) {
            let serial = session.score(Example::Pair(pair));
            assert_eq!(serial[0].to_bits(), score.to_bits());
        }
    }

    #[test]
    fn session_audit_proves_probability_node_inside_unit_interval() {
        let ds = MagellanDataset::FodorsZagats.load(0.15);
        let pair = ds.train.first().expect("pair");
        let reg = ModelRegistry::builtin();
        let cx = BuildContext { tier: LmTier::MiniDistil, arity: ds.arity().max(1) };
        let session = Session::new(reg.get("hiergat").expect("spec").build(&cx));
        let report =
            session.audit(Example::Pair(pair), &hiergat_nn::AbsintConfig::symbolic(8.0, 4.0));
        // The scoring graph ends in a softmax: the audited root must be
        // proven finite, NaN-free, and inside [0, 1].
        let root = report.ranges.last().expect("root range");
        assert!(root.finite && root.nan_free, "softmax output must be proven safe");
        assert!(root.lo >= 0.0 && root.hi <= 1.0 + 1e-3, "probabilities in [0,1]: {root:?}");
        assert!(report.is_clean_at(hiergat_nn::Severity::Warn), "{report}");
    }

    #[test]
    fn optimised_and_as_recorded_sessions_agree_bitwise() {
        let ds = MagellanDataset::FodorsZagats.load(0.15);
        let pairs = &ds.train[..ds.train.len().min(6)];
        let reg = ModelRegistry::builtin();
        let cx = BuildContext { tier: LmTier::MiniDistil, arity: ds.arity().max(1) };
        let mut session = Session::new(reg.get("ditto").expect("spec").build(&cx));
        assert!(session.optimizes(), "optimiser is on by default");
        let optimised = session.score_pairs(pairs);
        session.set_optimize(false);
        let plain = session.score_pairs(pairs);
        for (o, p) in optimised.iter().zip(&plain) {
            assert_eq!(o.to_bits(), p.to_bits(), "optimised replay must be bitwise-exact");
        }
    }

    #[test]
    fn quantised_session_shrinks_storage_and_stays_close_to_f32() {
        let ds = MagellanDataset::FodorsZagats.load(0.15);
        let pairs = &ds.train[..ds.train.len().min(8)];
        let reg = ModelRegistry::builtin();
        let cx = BuildContext { tier: LmTier::MiniDistil, arity: ds.arity().max(1) };
        let mut session = Session::new(reg.get("hiergat").expect("spec").build(&cx));
        let f32_scores = session.score_pairs(pairs);
        let report = session
            .quantise(Example::Pair(&pairs[0]), &QuantConfig::default())
            .expect("audit-clean model must quantise");
        assert!(session.is_quantised());
        assert!(
            report.arena_bytes < report.f32_arena_bytes,
            "quantised arena {} must undercut f32 arena {}",
            report.arena_bytes,
            report.f32_arena_bytes
        );
        assert!(
            report.weights.bytes_quantised < report.weights.bytes_f32,
            "weight bytes must shrink: {report:?}"
        );
        assert!(report.weights.int8_params + report.weights.f16_params > 0, "{report:?}");
        let q_scores = session.score_pairs(pairs);
        for (q, f) in q_scores.iter().zip(&f32_scores) {
            assert!((q - f).abs() < 0.05, "quantised score {q} drifted from f32 score {f}");
        }
        // Serial and batch replay agree on the quantised path too.
        for (pair, batch) in pairs.iter().zip(&q_scores) {
            let serial = session.score(Example::Pair(pair));
            assert_eq!(serial[0].to_bits(), batch.to_bits());
        }
    }

    #[test]
    fn decide_applies_the_session_threshold() {
        let ds = MagellanDataset::FodorsZagats.load(0.15);
        let pair = ds.train.first().expect("pair");
        let reg = ModelRegistry::builtin();
        let cx = BuildContext { tier: LmTier::MiniDistil, arity: ds.arity().max(1) };
        let mut session = Session::new(reg.get("dm+").expect("spec").build(&cx));
        let score = session.score(Example::Pair(pair))[0];
        session.set_threshold(score);
        assert!(session.decide(Example::Pair(pair))[0], "score == threshold is a match");
        session.set_threshold(score + f32::EPSILON.max(score * 1e-6));
        assert!(!session.decide(Example::Pair(pair))[0]);
    }
}
