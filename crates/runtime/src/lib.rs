//! Unified model runtime: one trait-object surface over every tape-recording
//! ER model in the workspace, a name → constructor registry, and a
//! forward-only inference session.
//!
//! The workspace grew eight tape-recording models (HierGAT in pairwise and
//! collective modes, Ditto, DeepMatcher, DM+, and the GCN/GAT/HGAT
//! collective baselines) behind three unrelated call surfaces: `HierGat`'s
//! inherent methods, `PairModel`, and `CollectiveErModel`. Every consumer —
//! the CLI's `analyze`/`lint`/`plan` subcommands, the benches, the
//! conformance tests — re-enumerated the models by hand. This crate folds
//! them behind [`ErModel`] and resolves them through [`ModelRegistry`], so
//! adding a model is one registry entry instead of N call-site edits.
//!
//! [`Session`] is the inference engine: it records a model's eval-mode
//! scoring graph on a forward-only tape ([`hiergat_nn::Tape::inference`]),
//! replays it through a cached arena plan
//! ([`hiergat_nn::ExecutionPlan::build_inference`]), and carries the
//! checkpoint's validation-tuned decision threshold. Scores are bitwise
//! identical to the eager `predict_*` paths — the graph recorded is the
//! same graph, and the arena executor computes each op with the same
//! kernels in the same order — while skipping the per-call parameter
//! cloning and per-node heap allocation of the eager path.

pub mod model;
pub mod registry;
pub mod resolve;
pub mod session;

pub use model::{ErModel, Example, HierGatCollective, HierGatPairwise, ModelKind};
pub use registry::{BuildContext, ModelRegistry, ModelSpec};
pub use resolve::{resolve, Resolution, ResolveConfig, ResolveStats};
pub use session::{QuantReport, Session};
