//! The streaming resolve driver: blocking → cascade scoring → clustering.
//!
//! This is the paper's Figure 5 pipeline at corpus scale. A fitted
//! [`CandidateSource`] streams `(query, candidates)` batches; each batch
//! contributes match *edges* to a union-find forest and is then dropped,
//! so memory is bounded by one batch regardless of corpus size — the
//! candidate pair matrix is never materialised.
//!
//! # The cosine cascade
//!
//! A HierGAT session scores ~10^3 pairs/s/core; a 10^6-record corpus
//! yields ~10^7 candidate pairs. The cascade keeps the model affordable:
//!
//! * `cosine >= accept`          → accept the edge outright;
//! * `cosine in [band.0, band.1)` → route the pair through
//!   [`Session::score_batch`] in `score_chunk`-sized chunks and accept
//!   when the model score clears the session threshold;
//! * otherwise                    → drop.
//!
//! Near-duplicates overwhelmingly land above `accept` (copies of one
//! product share most tokens), so the model only adjudicates the
//! ambiguous band — typically a few percent of candidates. Band pairs
//! already connected transitively are skipped, which both saves model
//! calls and is deterministic (union-find state depends only on the edge
//! set applied so far, and batches arrive in a fixed order).
//!
//! # Determinism
//!
//! Cluster output is bitwise-identical at any `HIERGAT_THREADS` width:
//! candidate retrieval is one-slot-per-query `par_map`, `score_batch` is
//! width-invariant, edges are normalised to `(min, max)` and deduplicated
//! within each batch, and the final labels are canonical min-member ids
//! (edge-order invariant).

use crate::Session;
use hiergat_blocking::{CandidateSource, EntityStore, UnionFind};
use hiergat_data::EntityPair;
use std::time::Instant;

/// Tuning knobs for [`resolve`].
#[derive(Debug, Clone)]
pub struct ResolveConfig {
    /// Queries per streamed batch.
    pub batch_size: usize,
    /// Pairs per `score_batch` call inside the model band.
    pub score_chunk: usize,
    /// Cosine at or above which an edge is accepted without the model.
    pub accept: f32,
    /// Cosine band `[lo, hi)` routed through the session; `None` (or no
    /// session) drops everything below `accept`.
    pub band: Option<(f32, f32)>,
}

impl Default for ResolveConfig {
    fn default() -> Self {
        Self { batch_size: 1024, score_chunk: 128, accept: 0.85, band: None }
    }
}

/// Counters and timings from one [`resolve`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolveStats {
    /// Records clustered.
    pub records: usize,
    /// Candidate edges streamed out of blocking (after per-query top-N and
    /// min-score filtering; before the cascade).
    pub candidates: u64,
    /// Edges accepted directly by the cosine threshold.
    pub cosine_accepted: u64,
    /// Pairs the session scored (band pairs not already connected).
    pub model_scored: u64,
    /// Band pairs the model accepted.
    pub model_accepted: u64,
    /// Band pairs skipped because their endpoints were already connected.
    pub band_skipped_connected: u64,
    /// Unions that actually merged two components.
    pub merges: u64,
    /// Final number of clusters.
    pub clusters: usize,
    /// Peak bytes held by in-flight batch buffers (candidates + band pair
    /// materialisations) — the streaming side of the peak-RSS proxy; the
    /// fitted source's index contributes separately via `memory_bytes`.
    pub batch_peak_bytes: u64,
    /// Wall-clock spent inside the model (band scoring).
    pub scoring_secs: f64,
    /// Total wall-clock of the resolve loop (blocking + cascade +
    /// clustering).
    pub total_secs: f64,
}

/// The result of a resolve run: canonical cluster labels (record `i` is
/// labelled with the smallest record id in its cluster) plus stats.
#[derive(Debug, Clone)]
pub struct Resolution {
    pub labels: Vec<u32>,
    pub stats: ResolveStats,
}

/// Streams `source`'s candidate batches into a union-find forest,
/// adjudicating ambiguous pairs with `session` when a band is configured.
/// `store` must be the table `source` was fitted on in dedup mode
/// (`store.len() == source.n_queries()`); it is only consulted to render
/// band-pair entities for the model.
pub fn resolve<S: CandidateSource>(
    source: &S,
    store: &dyn EntityStore,
    mut session: Option<&mut Session>,
    cfg: &ResolveConfig,
) -> Resolution {
    let n = source.n_queries();
    assert_eq!(
        n,
        store.len(),
        "resolve runs in dedup mode: the store must be the table the source was fitted on"
    );
    assert!(cfg.score_chunk > 0, "score_chunk must be positive");
    let band = match (&session, cfg.band) {
        (Some(_), Some((lo, hi))) => Some((lo.min(hi), cfg.accept.min(hi))),
        _ => None,
    };

    let start = Instant::now();
    let mut stats = ResolveStats { records: n, ..ResolveStats::default() };
    let mut uf = UnionFind::new(n);
    let mut cosine_edges: Vec<(u32, u32)> = Vec::new();
    let mut band_edges: Vec<(u32, u32)> = Vec::new();
    let mut pair_buf: Vec<EntityPair> = Vec::new();

    source.for_each_batch(cfg.batch_size.max(1), |batch| {
        cosine_edges.clear();
        band_edges.clear();
        for qc in batch {
            for c in &qc.candidates {
                if c.id == qc.query {
                    continue; // dedup sources exclude self already; belt and braces
                }
                stats.candidates += 1;
                let edge = (qc.query.min(c.id) as u32, qc.query.max(c.id) as u32);
                if c.score >= cfg.accept {
                    cosine_edges.push(edge);
                } else if let Some((lo, hi)) = band {
                    if c.score >= lo && c.score < hi {
                        band_edges.push(edge);
                    }
                }
            }
        }
        // Normalised edges arrive once per orientation; dedup within the
        // batch so the model never scores the same pair twice in a batch.
        cosine_edges.sort_unstable();
        cosine_edges.dedup();
        band_edges.sort_unstable();
        band_edges.dedup();

        for &(a, b) in &*cosine_edges {
            stats.cosine_accepted += 1;
            if uf.union(a as usize, b as usize) {
                stats.merges += 1;
            }
        }

        let mut batch_bytes = batch
            .iter()
            .map(|qc| {
                (size_of::<hiergat_blocking::QueryCandidates>()
                    + qc.candidates.capacity() * size_of::<hiergat_blocking::Candidate>())
                    as u64
            })
            .sum::<u64>()
            + ((cosine_edges.capacity() + band_edges.capacity()) * size_of::<(u32, u32)>()) as u64;

        if let Some(session) = session.as_deref_mut() {
            let scoring = Instant::now();
            for chunk in band_edges.chunks(cfg.score_chunk) {
                // Transitively-settled pairs don't need the model.
                let open: Vec<(u32, u32)> = chunk
                    .iter()
                    .copied()
                    .filter(|&(a, b)| {
                        let settled = uf.connected(a as usize, b as usize);
                        if settled {
                            stats.band_skipped_connected += 1;
                        }
                        !settled
                    })
                    .collect();
                if open.is_empty() {
                    continue;
                }
                pair_buf.clear();
                pair_buf.extend(open.iter().map(|&(a, b)| {
                    EntityPair::new(store.entity(a as usize), store.entity(b as usize), false)
                }));
                let pair_bytes: u64 = pair_buf
                    .iter()
                    .map(|p| (p.left.full_text().len() + p.right.full_text().len()) as u64 * 2)
                    .sum();
                batch_bytes = batch_bytes.max(pair_bytes);
                let scores = session.score_pairs(&pair_buf);
                stats.model_scored += open.len() as u64;
                let threshold = session.threshold();
                for (&(a, b), &score) in open.iter().zip(&scores) {
                    if score >= threshold {
                        stats.model_accepted += 1;
                        if uf.union(a as usize, b as usize) {
                            stats.merges += 1;
                        }
                    }
                }
            }
            stats.scoring_secs += scoring.elapsed().as_secs_f64();
        }
        stats.batch_peak_bytes = stats.batch_peak_bytes.max(batch_bytes);
    });

    let labels = uf.labels();
    stats.clusters = uf.n_components();
    stats.total_secs = start.elapsed().as_secs_f64();
    Resolution { labels, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildContext, ModelRegistry};
    use hiergat_blocking::{TfIdfCandidates, TfIdfSourceConfig};
    use hiergat_data::Entity;
    use hiergat_lm::LmTier;

    fn entity(id: &str, text: &str) -> Entity {
        Entity::new(id, vec![("title".into(), text.into())])
    }

    fn store() -> Vec<Entity> {
        vec![
            entity("0", "canon eos r5 mirrorless camera body kit"),
            entity("1", "canon eos r5 mirrorless camera body kit"),
            entity("2", "canon eos r5 mirrorless camera body kit"),
            entity("3", "dell ultrasharp 27 inch monitor panel"),
            entity("4", "dell ultrasharp 27 inch monitor panel"),
            entity("5", "fender stratocaster electric guitar sunburst"),
        ]
    }

    fn source(store: &[Entity]) -> TfIdfCandidates {
        let cfg = TfIdfSourceConfig {
            top_n: 4,
            min_score: 0.05,
            n_shards: 2,
            max_df: None,
            fit_chunk: 3,
        };
        TfIdfCandidates::fit_dedup(&store.to_vec(), &cfg)
    }

    #[test]
    fn cosine_only_resolve_clusters_duplicates() {
        let table = store();
        let src = source(&table);
        let cfg = ResolveConfig { batch_size: 2, accept: 0.95, ..ResolveConfig::default() };
        let r = resolve(&src, &table, None, &cfg);
        assert_eq!(r.labels, vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(r.stats.clusters, 3);
        assert!(r.stats.cosine_accepted >= 4);
        assert_eq!(r.stats.model_scored, 0);
        assert!(r.stats.batch_peak_bytes > 0);
    }

    #[test]
    fn band_routes_through_session() {
        let table = store();
        let src = source(&table);
        let registry = ModelRegistry::builtin();
        let cx = BuildContext { tier: LmTier::MiniDistil, arity: 1 };
        let spec = registry.get("hiergat").expect("hiergat is a builtin model");
        let mut session = Session::new(spec.build(&cx));
        // Impossible cosine accept forces every candidate into the band.
        let cfg =
            ResolveConfig { batch_size: 4, score_chunk: 2, accept: 1.1, band: Some((0.0, 1.1)) };
        let r = resolve(&src, &table, Some(&mut session), &cfg);
        assert!(r.stats.model_scored > 0, "band pairs must reach the session");
        assert_eq!(r.stats.cosine_accepted, 0);
        // Whatever the untrained model decided, the pipeline is
        // deterministic: a second identical run reproduces it bitwise.
        let mut session2 = Session::new(spec.build(&cx));
        let r2 = resolve(&src, &table, Some(&mut session2), &cfg);
        assert_eq!(r.labels, r2.labels);
    }

    #[test]
    fn labels_are_width_invariant() {
        let table = store();
        let src = source(&table);
        let cfg = ResolveConfig { batch_size: 2, accept: 0.95, ..ResolveConfig::default() };
        let serial = parallel::with_threads(1, || resolve(&src, &table, None, &cfg).labels);
        let wide = parallel::with_threads(8, || resolve(&src, &table, None, &cfg).labels);
        assert_eq!(serial, wide);
    }
}
