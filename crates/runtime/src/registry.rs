//! [`ModelRegistry`]: the one name → constructor table for every
//! tape-recording model in the workspace.
//!
//! Consumers (CLI subcommands, benches, the conformance suite) iterate the
//! registry instead of hand-enumerating model types; adding a model means
//! adding one [`ModelSpec`] here. Construction parameters that depend on
//! the data (schema arity) or the run (LM tier) arrive via
//! [`BuildContext`].

use crate::model::{ErModel, HierGatCollective, HierGatPairwise, ModelKind};
use hiergat::{HierGat, HierGatConfig};
use hiergat_baselines::{
    DeepMatcher, DeepMatcherConfig, Ditto, DittoConfig, DmPlus, DmPlusConfig, GnnCollective,
    GnnConfig, GnnKind,
};
use hiergat_lm::LmTier;

/// Run- and data-dependent construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct BuildContext {
    /// Language-model tier (§6.5 ablates DistilBERT/RoBERTa sizes).
    pub tier: LmTier,
    /// Schema arity (attributes per entity) of the dataset being scored.
    pub arity: usize,
}

/// One registry entry: stable name, display label, example side, and a
/// constructor.
pub struct ModelSpec {
    name: &'static str,
    display: &'static str,
    kind: ModelKind,
    build: fn(&BuildContext) -> Box<dyn ErModel>,
}

impl ModelSpec {
    /// Stable lookup key (lowercase, e.g. `"hiergat+"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Human-readable label used in CLI report headers.
    pub fn display(&self) -> &'static str {
        self.display
    }

    /// Which example side the model consumes.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Constructs the model for `cx`.
    pub fn build(&self, cx: &BuildContext) -> Box<dyn ErModel> {
        (self.build)(cx)
    }
}

/// The model table. [`ModelRegistry::builtin`] lists the eight
/// tape-recording models of the paper's evaluation; Magellan is absent by
/// design (classic feature classifiers record no tape — see
/// [`ModelRegistry::tapeless_notes`]).
pub struct ModelRegistry {
    specs: Vec<ModelSpec>,
}

impl ModelRegistry {
    /// The eight built-in models, in the evaluation's reporting order.
    pub fn builtin() -> Self {
        let specs = vec![
            ModelSpec {
                name: "hiergat",
                display: "HierGAT (pairwise)",
                kind: ModelKind::Pairwise,
                build: |cx| {
                    Box::new(HierGatPairwise(HierGat::new(
                        HierGatConfig::pairwise().with_tier(cx.tier),
                        cx.arity,
                    )))
                },
            },
            ModelSpec {
                name: "hiergat+",
                display: "HierGAT+ (collective)",
                kind: ModelKind::Collective,
                build: |cx| {
                    Box::new(HierGatCollective(HierGat::new(
                        HierGatConfig::collective().with_tier(cx.tier),
                        cx.arity,
                    )))
                },
            },
            ModelSpec {
                name: "ditto",
                display: "Ditto",
                kind: ModelKind::Pairwise,
                build: |cx| {
                    Box::new(Ditto::new(DittoConfig { lm_tier: cx.tier, ..Default::default() }))
                },
            },
            ModelSpec {
                name: "deepmatcher",
                display: "DeepMatcher",
                kind: ModelKind::Pairwise,
                build: |cx| Box::new(DeepMatcher::new(DeepMatcherConfig::default(), cx.arity)),
            },
            ModelSpec {
                name: "dm+",
                display: "DM+",
                kind: ModelKind::Pairwise,
                build: |cx| Box::new(DmPlus::new(DmPlusConfig::default(), cx.arity)),
            },
            ModelSpec {
                name: "gcn",
                display: "GCN (collective)",
                kind: ModelKind::Collective,
                build: |_| Box::new(GnnCollective::new(GnnKind::Gcn, GnnConfig::default())),
            },
            ModelSpec {
                name: "gat",
                display: "GAT (collective)",
                kind: ModelKind::Collective,
                build: |_| Box::new(GnnCollective::new(GnnKind::Gat, GnnConfig::default())),
            },
            ModelSpec {
                name: "hgat",
                display: "HGAT (collective)",
                kind: ModelKind::Collective,
                build: |_| Box::new(GnnCollective::new(GnnKind::Hgat, GnnConfig::default())),
            },
        ];
        Self { specs }
    }

    /// All entries, in registration order.
    pub fn specs(&self) -> &[ModelSpec] {
        &self.specs
    }

    /// Looks an entry up by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&ModelSpec> {
        self.specs.iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Evaluation models that record no tape and therefore have no entry:
    /// one explanatory note per model, for `lint`-style reports.
    pub fn tapeless_notes(&self) -> Vec<String> {
        vec!["Magellan: classic feature-based classifiers record no tape; nothing to lint".into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx() -> BuildContext {
        BuildContext { tier: LmTier::MiniDistil, arity: 3 }
    }

    #[test]
    fn registry_lists_all_eight_models_with_unique_names() {
        let reg = ModelRegistry::builtin();
        assert_eq!(reg.specs().len(), 8);
        let mut names: Vec<&str> = reg.specs().iter().map(ModelSpec::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "registry names must be unique");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let reg = ModelRegistry::builtin();
        assert!(reg.get("HierGAT").is_some());
        assert!(reg.get("DM+").is_some());
        assert!(reg.get("nonesuch").is_none());
    }

    #[test]
    fn built_models_report_their_registered_kind() {
        let reg = ModelRegistry::builtin();
        for spec in reg.specs() {
            let model = spec.build(&cx());
            assert_eq!(model.kind(), spec.kind(), "{}", spec.name());
            assert!(!model.params().is_empty(), "{} has no parameters", spec.name());
        }
    }
}
