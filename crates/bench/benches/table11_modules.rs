//! Table 11 — comparison-module ablation for HierGAT+:
//! full model vs Non-Sum (no entity summarization context) vs Non-Align
//! (no entity alignment layer).

use hiergat::HierGatConfig;
use hiergat_baselines::flatten_collective;
use hiergat_bench::*;
use hiergat_data::{load_di2kg, CollectiveDataset, Di2kgCategory, MagellanDataset};
use hiergat_lm::LmTier;

/// `(name, paper [HG+, Non-Sum, Non-Align])`.
const PAPER: &[(&str, [f64; 3])] = &[
    ("I-A", [64.7, 63.5, 62.5]),
    ("D-A", [99.6, 99.2, 99.1]),
    ("A-G", [83.1, 82.6, 77.1]),
    ("W-A", [89.2, 87.9, 85.8]),
    ("A-B", [92.9, 90.6, 86.3]),
    ("camera", [99.6, 99.1, 99.3]),
    ("monitor", [99.4, 99.2, 99.1]),
];

fn variants() -> [(&'static str, HierGatConfig); 3] {
    let full = HierGatConfig::collective();
    [
        ("HG+", full),
        ("Non-Sum", HierGatConfig { use_entity_summarization: false, ..full }),
        ("Non-Align", HierGatConfig { use_alignment: false, ..full }),
    ]
}

fn run_dataset(name: &str, ds: &CollectiveDataset, paper: &[f64; 3]) {
    println!("{name}:");
    let flat = flatten_collective(ds);
    let pre = pretrain_for(&flat, LmTier::MiniBase);
    let arity = collective_arity(ds);
    for ((vname, cfg), &p) in variants().into_iter().zip(paper) {
        let f1 = run_hiergat_collective(ds, cfg, arity, Some(&pre));
        row(vname, p, f1);
    }
}

fn main() {
    banner("Table 11 — aggregation/comparison module ablation (HierGAT+)");
    let scale = bench_scale() * 0.3;
    let magellan = [
        MagellanDataset::ItunesAmazon,
        MagellanDataset::DblpAcm,
        MagellanDataset::AmazonGoogle,
        MagellanDataset::WalmartAmazon,
        MagellanDataset::AbtBuy,
    ];
    for (kind, (name, paper)) in magellan.into_iter().zip(PAPER) {
        let ds = kind.load_collective(scale);
        run_dataset(name, &ds, paper);
    }
    for (cat, (name, paper)) in
        [Di2kgCategory::Camera, Di2kgCategory::Monitor].into_iter().zip(&PAPER[5..])
    {
        let ds = load_di2kg(cat, scale);
        run_dataset(name, &ds, paper);
    }
}
