//! Figure 10 — F1 vs training-set size on the WDC product corpus
//! (DeepMatcher / Ditto / HierGAT over small -> xlarge, per domain + "all").
//!
//! The paper reports curves rather than a table; the properties the harness
//! checks are (1) every model improves with more data, (2) HierGAT leads at
//! small training sizes (label efficiency: "HierGAT outperforms Ditto by
//! 6.7% on average at 1/24 size"), and (3) Transformer models beat the RNN.

use hiergat::HierGatConfig;
use hiergat_bench::*;
use hiergat_data::{load_wdc, load_wdc_all, WdcDomain, WdcSize};
use hiergat_lm::LmTier;

fn run_series(name: &str, loader: impl Fn(WdcSize) -> hiergat_data::PairDataset) {
    println!("{name}:");
    println!("  {:<8} {:>6} {:>8} {:>8} {:>8}", "size", "train", "DM", "Ditto", "HG");
    let mut small_gap = None;
    for size in WdcSize::all() {
        let ds = loader(size);
        let pre = pretrain_for(&ds, LmTier::MiniBase);
        let dm = run_deepmatcher(&ds);
        let ditto = run_ditto(&ds, LmTier::MiniBase, Some(&pre));
        let hg = run_hiergat(&ds, HierGatConfig::pairwise(), Some(&pre));
        println!(
            "  {:<8} {:>6} {:>8.1} {:>8.1} {:>8.1}",
            size.name(),
            ds.train.len(),
            dm,
            ditto,
            hg
        );
        if size == WdcSize::Small {
            small_gap = Some(hg - ditto);
        }
    }
    if let Some(gap) = small_gap {
        println!("  HG - Ditto at small size: {gap:+.1} (paper: +6.7 avg)");
    }
}

fn main() {
    banner("Figure 10 — F1 vs WDC training-set size (DM / Ditto / HierGAT)");
    let scale = bench_scale() * 0.6;
    for domain in WdcDomain::all() {
        run_series(domain.name(), |size| load_wdc(domain, size, scale));
    }
    run_series("all", |size| load_wdc_all(size, scale * 0.4));
}
