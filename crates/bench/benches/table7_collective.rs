//! Table 7 — collective ER results: MG, DM+, GCN, GAT, HGAT, Ditto,
//! HierGAT, HierGAT+ on the collective Magellan and DI2KG datasets.

use hiergat::HierGatConfig;
use hiergat_baselines::{flatten_collective, GnnCollective, GnnConfig, GnnKind};
use hiergat_bench::*;
use hiergat_data::{load_di2kg, CollectiveDataset, Di2kgCategory, MagellanDataset};
use hiergat_lm::LmTier;

/// `(name, paper MG, DM+, GCN, GAT, HGAT, Ditto, HG, HG+)`; `None` = the
/// paper could not run the model (Magellan needs exactly two tables).
#[allow(dead_code)] // names document the rows
struct PaperRow {
    name: &'static str,
    mg: Option<f64>,
    dmp: f64,
    gcn: f64,
    gat: f64,
    hgat: f64,
    ditto: f64,
    hg: f64,
    hg_plus: f64,
}

const PAPER: &[PaperRow] = &[
    PaperRow {
        name: "I-A",
        mg: Some(50.0),
        dmp: 55.9,
        gcn: 36.1,
        gat: 36.7,
        hgat: 64.6,
        ditto: 58.6,
        hg: 59.3,
        hg_plus: 64.7,
    },
    PaperRow {
        name: "D-A",
        mg: Some(94.7),
        dmp: 98.4,
        gcn: 97.4,
        gat: 97.5,
        hgat: 98.2,
        ditto: 98.8,
        hg: 98.9,
        hg_plus: 99.6,
    },
    PaperRow {
        name: "A-G",
        mg: Some(28.5),
        dmp: 69.0,
        gcn: 64.5,
        gat: 63.6,
        hgat: 75.5,
        ditto: 77.6,
        hg: 78.0,
        hg_plus: 83.1,
    },
    PaperRow {
        name: "W-A",
        mg: Some(58.0),
        dmp: 72.5,
        gcn: 67.7,
        gat: 54.8,
        hgat: 76.7,
        ditto: 85.2,
        hg: 85.9,
        hg_plus: 92.3,
    },
    PaperRow {
        name: "A-B",
        mg: Some(52.2),
        dmp: 62.1,
        gcn: 57.6,
        gat: 55.7,
        hgat: 68.9,
        ditto: 89.3,
        hg: 89.5,
        hg_plus: 93.2,
    },
    PaperRow {
        name: "camera",
        mg: None,
        dmp: 98.0,
        gcn: 82.1,
        gat: 88.2,
        hgat: 89.5,
        ditto: 99.0,
        hg: 99.1,
        hg_plus: 99.4,
    },
    PaperRow {
        name: "monitor",
        mg: None,
        dmp: 99.1,
        gcn: 78.8,
        gat: 84.0,
        hgat: 84.6,
        ditto: 98.8,
        hg: 99.2,
        hg_plus: 99.6,
    },
];

fn run_dataset(name: &str, ds: &CollectiveDataset, paper: &PaperRow) {
    println!("{name}:");
    let flat = flatten_collective(ds);
    let pre = pretrain_for(&flat, LmTier::MiniBase);
    let arity = collective_arity(ds);

    if let Some(p_mg) = paper.mg {
        row("MG", p_mg, run_magellan(&flat));
    }
    row("DM+", paper.dmp, run_dmplus(&flat));
    for (kind, p) in
        [(GnnKind::Gcn, paper.gcn), (GnnKind::Gat, paper.gat), (GnnKind::Hgat, paper.hgat)]
    {
        let mut model =
            GnnCollective::new(kind, GnnConfig { epochs: bench_epochs(), ..Default::default() });
        row(kind.name(), p, run_collective_baseline(&mut model, ds));
    }
    row("Ditto", paper.ditto, run_ditto(&flat, LmTier::MiniBase, Some(&pre)));
    row("HierGAT", paper.hg, run_hiergat(&flat, HierGatConfig::pairwise(), Some(&pre)));
    row(
        "HierGAT+",
        paper.hg_plus,
        run_hiergat_collective(ds, HierGatConfig::collective(), arity, Some(&pre)),
    );
}

fn main() {
    banner("Table 7 — collective ER (MG / DM+ / GCN / GAT / HGAT / Ditto / HG / HG+)");
    let scale = bench_scale() * 0.6;
    let magellan = [
        (MagellanDataset::ItunesAmazon, 0),
        (MagellanDataset::DblpAcm, 1),
        (MagellanDataset::AmazonGoogle, 2),
        (MagellanDataset::WalmartAmazon, 3),
        (MagellanDataset::AbtBuy, 4),
    ];
    for (kind, pi) in magellan {
        let ds = kind.load_collective(scale);
        run_dataset(kind.short_name(), &ds, &PAPER[pi]);
    }
    for (cat, pi) in [(Di2kgCategory::Camera, 5), (Di2kgCategory::Monitor, 6)] {
        let ds = load_di2kg(cat, scale);
        run_dataset(cat.name(), &ds, &PAPER[pi]);
    }
}
