//! Serial-vs-parallel kernel timings plus an analyzer-estimate audit.
//!
//! Emits `BENCH_kernels.json` in the working directory with, per kernel:
//! best-of-N serial and pooled wall times, the speedup, a bitwise-equality
//! verdict (the pool must not change a single ULP), and — for matmul — the
//! static analyzer's FLOP estimate next to an instrumented count of the
//! floating-point operations the kernel actually executes.
//!
//! Numbers are honest for the machine they ran on: on a single hardware
//! thread the pool has no workers and `speedup` hovers around 1.0.

use hiergat_data::MagellanDataset;
use hiergat_lm::LmTier;
use hiergat_nn::{Adam, ArenaExecutor, Optimizer, ParamId, ParamStore, Tape, Var};
use hiergat_runtime::{BuildContext, Example, ModelRegistry, Session};
use hiergat_tensor::{alloc_stats, cost, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const REPS: usize = 7;

/// Best-of-`REPS` wall time in seconds.
fn time_best<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("REPS > 0"))
}

/// Counts the floating-point ops a zero-skipping matmul actually performs:
/// one multiply and one add per inner-product term with a non-zero left
/// operand — the same contract as the production kernel. `out_cols` is the
/// output width (`b.cols()` for `A B`, `b.rows()` for `A B^T`).
fn measured_matmul_flops(a: &Tensor, out_cols: usize) -> u64 {
    let (r, k) = a.shape();
    let mut ops = 0u64;
    for i in 0..r {
        for p in 0..k {
            if a.get(i, p) != 0.0 {
                ops += 2 * out_cols as u64;
            }
        }
    }
    ops
}

struct KernelRow {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
    bitwise_equal: bool,
    analyzer_flops: u64,
    measured_flops: u64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.serial_s / self.parallel_s
        } else {
            0.0
        }
    }

    fn flop_rel_err(&self) -> f64 {
        if self.measured_flops == 0 {
            return 0.0;
        }
        let (a, m) = (self.analyzer_flops as f64, self.measured_flops as f64);
        (a - m).abs() / m
    }

    fn json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"speedup\": {:.3}, \"bitwise_equal\": {}, \"analyzer_flops\": {}, \
             \"measured_flops\": {}, \"flop_rel_err\": {:.4}}}",
            self.name,
            self.serial_s * 1e3,
            self.parallel_s * 1e3,
            self.speedup(),
            self.bitwise_equal,
            self.analyzer_flops,
            self.measured_flops,
            self.flop_rel_err(),
        )
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn bits_f32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A two-layer classifier training graph (matmul / add_row / tanh / matmul
/// / cross-entropy) — the steady-state heap-vs-arena workload.
fn record_train_graph(
    t: &mut Tape,
    store: &ParamStore,
    ids: &[ParamId],
    x: &Tensor,
    targets: &[usize],
) -> Var {
    let xv = t.input(x.clone());
    let w1 = t.param(store, ids[0]);
    let b1 = t.param(store, ids[1]);
    let w2 = t.param(store, ids[2]);
    let h = t.matmul(xv, w1);
    let h = t.add_row(h, b1);
    let h = t.tanh(h);
    let logits = t.matmul(h, w2);
    t.cross_entropy_logits(logits, targets)
}

fn train_store(seed: u64) -> (ParamStore, Vec<ParamId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamStore::new();
    let ids = vec![
        ps.add("w1", Tensor::rand_normal(128, 256, 0.0, 0.1, &mut rng)),
        ps.add("b1", Tensor::zeros(1, 256)),
        ps.add("w2", Tensor::rand_normal(256, 10, 0.0, 0.1, &mut rng)),
    ];
    (ps, ids)
}

struct TrainModeRow {
    ms_per_step: f64,
    allocs_per_step: f64,
    bytes_per_step: f64,
    losses: Vec<u32>,
}

/// Runs `steps` training steps through `step`, timing them and diffing the
/// global tensor-allocation counters across the loop.
fn run_train_mode(steps: usize, mut step: impl FnMut() -> f32) -> TrainModeRow {
    let before = alloc_stats();
    let t0 = Instant::now();
    let losses: Vec<u32> = (0..steps).map(|_| step().to_bits()).collect();
    let elapsed = t0.elapsed().as_secs_f64();
    let d = alloc_stats().since(before);
    let n = steps as f64;
    TrainModeRow {
        ms_per_step: elapsed * 1e3 / n,
        allocs_per_step: d.count as f64 / n,
        bytes_per_step: d.bytes as f64 / n,
        losses,
    }
}

fn main() {
    let threads = parallel::threads();
    let mut rng = StdRng::seed_from_u64(0x6b65);
    let mut rows = Vec::new();

    // 256^3 matmul — the acceptance workload.
    let a = Tensor::rand_normal(256, 256, 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(256, 256, 0.0, 1.0, &mut rng);
    let (ser_s, ser) = time_best(|| a.matmul_serial(&b));
    let (par_s, par) = time_best(|| a.matmul(&b));
    rows.push(KernelRow {
        name: "matmul_256x256x256",
        serial_s: ser_s,
        parallel_s: par_s,
        bitwise_equal: bits(&ser) == bits(&par),
        analyzer_flops: cost::matmul_flops(256, 256, 256),
        measured_flops: measured_matmul_flops(&a, b.cols()),
    });

    // Fused A B^T (attention scoring shape: seq 128, head dim 64).
    let q = Tensor::rand_normal(128, 64, 0.0, 1.0, &mut rng);
    let k = Tensor::rand_normal(128, 64, 0.0, 1.0, &mut rng);
    let (ser_s, ser) = time_best(|| q.matmul_nt_serial(&k));
    let (par_s, par) = time_best(|| q.matmul_nt(&k));
    rows.push(KernelRow {
        name: "matmul_nt_128x64_scores",
        serial_s: ser_s,
        parallel_s: par_s,
        bitwise_equal: bits(&ser) == bits(&par),
        analyzer_flops: cost::matmul_flops(128, 64, 128),
        measured_flops: measured_matmul_flops(&q, k.rows()),
    });

    // Full attention scoring: softmax(Q K^T) — the row-parallel composite.
    let (ser_s, ser) = time_best(|| q.matmul_nt_serial(&k).softmax_rows_serial());
    let (par_s, par) = time_best(|| q.matmul_nt(&k).softmax_rows());
    rows.push(KernelRow {
        name: "attention_scores_softmax_128",
        serial_s: ser_s,
        parallel_s: par_s,
        bitwise_equal: bits(&ser) == bits(&par),
        analyzer_flops: cost::matmul_flops(128, 64, 128) + cost::softmax_flops(128, 128),
        measured_flops: 0, // transcendental ops are modeled, not counted
    });

    // Row-wise softmax on a larger block.
    let s = Tensor::rand_normal(512, 256, 0.0, 1.0, &mut rng);
    let (ser_s, ser) = time_best(|| s.softmax_rows_serial());
    let (par_s, par) = time_best(|| s.softmax_rows());
    rows.push(KernelRow {
        name: "softmax_rows_512x256",
        serial_s: ser_s,
        parallel_s: par_s,
        bitwise_equal: bits(&ser) == bits(&par),
        analyzer_flops: cost::softmax_flops(512, 256),
        measured_flops: 0,
    });

    println!("kernel timings at {threads} thread(s) (HIERGAT_THREADS to override):");
    for r in &rows {
        println!(
            "  {:<30} serial {:>8.3} ms  pooled {:>8.3} ms  speedup {:>5.2}x  bitwise {}",
            r.name,
            r.serial_s * 1e3,
            r.parallel_s * 1e3,
            r.speedup(),
            if r.bitwise_equal { "ok" } else { "MISMATCH" },
        );
        if r.measured_flops > 0 {
            println!(
                "  {:<30} analyzer {} FLOPs vs measured {} ({:.2}% off)",
                "",
                r.analyzer_flops,
                r.measured_flops,
                r.flop_rel_err() * 100.0,
            );
        }
    }

    let all_bitwise = rows.iter().all(|r| r.bitwise_equal);
    let max_rel_err = rows.iter().map(KernelRow::flop_rel_err).fold(0.0f64, f64::max);
    assert!(all_bitwise, "pooled kernels must match serial bitwise");
    assert!(max_rel_err <= 0.10, "analyzer FLOP estimate off by {:.1}%", max_rel_err * 100.0);

    // Steady-state training step, heap vs arena. The heap mode re-records
    // an eager tape every step (values materialize during recording); the
    // arena mode replays the cached plan over one deferred tape. Both run
    // the identical graph from identical seeds, so the loss sequences must
    // match bitwise, and the arena replay must allocate no tensors at all.
    const TRAIN_STEPS: usize = 20;
    let x = Tensor::rand_normal(64, 128, 0.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..64).map(|i| i % 10).collect();

    let (mut ps_h, ids_h) = train_store(0xa55a);
    let mut opt_h = Adam::new(1e-3);
    let mut heap_step = || {
        ps_h.zero_grad();
        let mut t = Tape::new();
        let loss = record_train_graph(&mut t, &ps_h, &ids_h, &x, &targets);
        let v = t.value(loss).item();
        t.backward(loss, &mut ps_h);
        ps_h.clip_grad_norm(5.0);
        opt_h.step(&mut ps_h);
        v
    };

    let (mut ps_a, ids_a) = train_store(0xa55a);
    let mut opt_a = Adam::new(1e-3);
    let mut tape = Tape::deferred();
    let loss_a = record_train_graph(&mut tape, &ps_a, &ids_a, &x, &targets);
    let mut exec = ArenaExecutor::new();
    let arena_planned = exec.plan_report(&tape, loss_a).arena_bytes;
    let mut arena_step = || {
        ps_a.zero_grad();
        let v = exec.step(&tape, loss_a, &mut ps_a);
        ps_a.clip_grad_norm(5.0);
        opt_a.step(&mut ps_a);
        v
    };

    // Warm-up: plan construction, arena growth, Adam moment state.
    let (wh, wa) = (heap_step(), arena_step());
    assert_eq!(wh.to_bits(), wa.to_bits(), "warm-up loss diverged: {wh} vs {wa}");
    let heap = run_train_mode(TRAIN_STEPS, heap_step);
    let arena = run_train_mode(TRAIN_STEPS, arena_step);
    let losses_equal = heap.losses == arena.losses;

    println!("training step (two-layer classifier, {TRAIN_STEPS} steps, heap vs arena):");
    println!(
        "  heap  {:>8.3} ms/step  {:>7.1} tensor allocs/step  {:>12.0} bytes/step",
        heap.ms_per_step, heap.allocs_per_step, heap.bytes_per_step,
    );
    println!(
        "  arena {:>8.3} ms/step  {:>7.1} tensor allocs/step  {:>12.0} bytes/step  \
         (plan: {arena_planned} B)",
        arena.ms_per_step, arena.allocs_per_step, arena.bytes_per_step,
    );
    println!("  losses bitwise {}", if losses_equal { "ok" } else { "MISMATCH" });
    assert!(losses_equal, "heap and arena loss sequences must match bitwise");
    assert!(
        arena.allocs_per_step == 0.0,
        "arena steady state must allocate no tensors, saw {}/step",
        arena.allocs_per_step
    );

    // Scoring throughput: the eager predict path (fresh eager tape per
    // pair — every parameter tensor cloned in, every node heap-allocated)
    // vs a runtime Session replaying cached forward-only arena plans.
    // Identical graphs, identical kernels, so the scores must match
    // bitwise while the session skips the per-call allocation work.
    let ds = MagellanDataset::FodorsZagats.load(0.3);
    let pairs: Vec<_> = ds.train.iter().take(24).collect();
    let registry = ModelRegistry::builtin();
    let spec = registry.get("hiergat").expect("hiergat registered");
    let cx = BuildContext { tier: LmTier::MiniDistil, arity: ds.arity().max(1) };
    let mut session = Session::new(spec.build(&cx));
    // Warm the plan cache so the timed loop measures steady-state replay.
    for p in &pairs {
        session.score(Example::Pair(p));
    }
    let (eager_s, eager_scores) = time_best(|| {
        pairs.iter().map(|p| session.model().predict(Example::Pair(p))[0]).collect::<Vec<f32>>()
    });
    let (infer_s, infer_scores) = time_best(|| {
        pairs.iter().map(|p| session.score(Example::Pair(p))[0]).collect::<Vec<f32>>()
    });
    let scores_bitwise = bits_f32(&eager_scores) == bits_f32(&infer_scores);
    let n_pairs = pairs.len() as f64;
    let (eager_pps, infer_pps) = (n_pairs / eager_s, n_pairs / infer_s);
    let scoring_speedup = eager_s / infer_s;
    let first = Example::Pair(pairs[0]);
    let train_arena = session.model().plan_training(first).arena_bytes;
    let infer_arena = session.model().plan_inference(first).arena_bytes;

    println!("pair scoring (HierGAT pairwise, {} pairs, eager vs inference session):", pairs.len());
    println!("  eager   {eager_pps:>8.1} pairs/s");
    println!("  session {infer_pps:>8.1} pairs/s  speedup {scoring_speedup:>5.2}x");
    println!("  peak arena: training plan {train_arena} B, inference plan {infer_arena} B");
    println!("  scores bitwise {}", if scores_bitwise { "ok" } else { "MISMATCH" });
    assert!(scores_bitwise, "session scoring must match eager predictions bitwise");
    assert!(
        infer_arena < train_arena,
        "inference plan ({infer_arena} B) must undercut the training plan ({train_arena} B)"
    );
    assert!(
        scoring_speedup >= 1.3,
        "inference session must score at least 1.3x faster than eager, got {scoring_speedup:.2}x"
    );

    let body: Vec<String> = rows.iter().map(KernelRow::json).collect();
    let train_json = format!(
        "  \"train_step\": {{\"graph\": \"mlp_64x128x256x10\", \"steps\": {TRAIN_STEPS}, \
         \"heap_ms_per_step\": {:.3}, \"heap_allocs_per_step\": {:.1}, \
         \"heap_bytes_per_step\": {:.0}, \"arena_ms_per_step\": {:.3}, \
         \"arena_allocs_per_step\": {:.1}, \"arena_bytes_per_step\": {:.0}, \
         \"arena_planned_bytes\": {arena_planned}, \"loss_bitwise_equal\": {losses_equal}}},",
        heap.ms_per_step,
        heap.allocs_per_step,
        heap.bytes_per_step,
        arena.ms_per_step,
        arena.allocs_per_step,
        arena.bytes_per_step,
    );
    let scoring_json = format!(
        "  \"scoring\": {{\"model\": \"hiergat-pairwise\", \"pairs\": {}, \
         \"eager_pairs_per_s\": {eager_pps:.1}, \"session_pairs_per_s\": {infer_pps:.1}, \
         \"speedup\": {scoring_speedup:.3}, \"bitwise_equal\": {scores_bitwise}, \
         \"train_peak_arena_bytes\": {train_arena}, \
         \"infer_peak_arena_bytes\": {infer_arena}}},",
        pairs.len(),
    );
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"all_bitwise_equal\": {all_bitwise},\n  \
         \"max_flop_rel_err\": {max_rel_err:.4},\n{train_json}\n{scoring_json}\n  \
         \"kernels\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
    );
    // cargo runs benches with cwd = package dir; anchor at the workspace root.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    std::fs::write(&out, &json).expect("write BENCH_kernels.json");
    println!("wrote {}", out.display());
}
