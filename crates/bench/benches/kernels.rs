//! Serial-vs-parallel kernel timings plus an analyzer-estimate audit.
//!
//! Emits `BENCH_kernels.json` in the working directory with, per kernel:
//! best-of-N serial and pooled wall times, the speedup, a bitwise-equality
//! verdict (the pool must not change a single ULP), and — for matmul — a
//! pinned copy of the pre-microkernel scalar kernel as the historical
//! baseline (`scalar_ms` / `micro_speedup`) next to the static analyzer's
//! FLOP estimate and the count of floating-point operations the kernel
//! contract implies. Kernels without FLOP instrumentation (the softmax
//! rows: transcendental ops are modeled, not counted) report `null` for
//! the measured fields rather than a fake zero-error match.
//!
//! Numbers are honest for the machine they ran on: on a single hardware
//! thread the pool has no workers and `speedup` hovers around 1.0; the
//! `micro_speedup` column is the one that reflects the tiled microkernel
//! (and, under `--features simd`, the AVX2+FMA tile), and the acceptance
//! floor (`>= 4x` on `matmul_256x256x256`) is asserted in the `simd`
//! build where the vector path is what is being shipped.

use hiergat_data::MagellanDataset;
use hiergat_lm::LmTier;
use hiergat_nn::{Adam, ArenaExecutor, Optimizer, ParamId, ParamStore, Tape, Var};
use hiergat_runtime::{BuildContext, Example, ModelRegistry, Session};
use hiergat_tensor::{alloc_stats, cost, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const REPS: usize = 7;

/// Best-of-`REPS` wall time in seconds.
fn time_best<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("REPS > 0"))
}

/// Pinned copy of the pre-microkernel serial matmul: plain `i-k-j` loops
/// with the historical zero-skip shortcut. This is the scalar kernel the
/// tiled microkernel replaced; `micro_speedup` is measured against it so
/// the number tracks the optimization, not pool scaling.
fn legacy_scalar_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (r, k) = a.shape();
    let c = b.cols();
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; r * c];
    for (a_row, o_row) in av.chunks_exact(k).zip(out.chunks_exact_mut(c)) {
        for (p, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &bv[p * c..(p + 1) * c];
            for (o_v, &b_v) in o_row.iter_mut().zip(b_row) {
                *o_v += a_ik * b_v;
            }
        }
    }
    Tensor::from_vec(r, c, out).expect("sized")
}

/// Pinned copy of the pre-microkernel serial `A B^T`: one scalar dot
/// product per output element.
fn legacy_scalar_matmul_nt(a: &Tensor, bt: &Tensor) -> Tensor {
    let (r, k) = a.shape();
    let c = bt.rows();
    let (av, btv) = (a.as_slice(), bt.as_slice());
    let mut out = vec![0.0f32; r * c];
    for (a_row, o_row) in av.chunks_exact(k).zip(out.chunks_exact_mut(c)) {
        for (j, o_v) in o_row.iter_mut().enumerate() {
            let b_row = &btv[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&a_v, &b_v) in a_row.iter().zip(b_row) {
                acc += a_v * b_v;
            }
            *o_v = acc;
        }
    }
    Tensor::from_vec(r, c, out).expect("sized")
}

/// Counts the floating-point ops the production matmul contract implies:
/// one multiply and one add per inner-product term, **every** term
/// evaluated — the kernels no longer skip zero operands (`0.0 * inf` must
/// surface as `NaN`), so the count is data-independent. `out_cols` is the
/// output width (`b.cols()` for `A B`, `b.rows()` for `A B^T`).
fn measured_matmul_flops(a: &Tensor, out_cols: usize) -> u64 {
    let (r, k) = a.shape();
    2 * r as u64 * k as u64 * out_cols as u64
}

/// `null`-aware JSON number formatting for optional metrics.
fn json_opt_f64(v: Option<f64>, decimals: usize) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.decimals$}"))
}

struct KernelRow {
    name: &'static str,
    /// Pinned legacy scalar kernel wall time; `None` for kernels that had
    /// no scalar predecessor to compare against (the softmax rows).
    scalar_s: Option<f64>,
    serial_s: f64,
    parallel_s: f64,
    bitwise_equal: bool,
    analyzer_flops: u64,
    /// Instrumented FLOP count; `None` when the kernel is not covered by
    /// the instrumentation (transcendental ops are modeled, not counted).
    measured_flops: Option<u64>,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.serial_s / self.parallel_s
        } else {
            0.0
        }
    }

    /// Microkernel gain over the pinned scalar baseline (serial vs serial,
    /// so pool scaling cannot inflate it). `None` without a baseline.
    fn micro_speedup(&self) -> Option<f64> {
        let scalar = self.scalar_s?;
        if self.serial_s > 0.0 {
            Some(scalar / self.serial_s)
        } else {
            None
        }
    }

    /// Analyzer-vs-measured relative error; `None` for uncovered kernels
    /// (those must be skipped, not counted as a perfect 0.0 match).
    fn flop_rel_err(&self) -> Option<f64> {
        let measured = self.measured_flops?;
        if measured == 0 {
            return None;
        }
        let (a, m) = (self.analyzer_flops as f64, measured as f64);
        Some((a - m).abs() / m)
    }

    fn json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"scalar_ms\": {}, \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"micro_speedup\": {}, \
             \"bitwise_equal\": {}, \"analyzer_flops\": {}, \
             \"measured_flops\": {}, \"flop_rel_err\": {}}}",
            self.name,
            json_opt_f64(self.scalar_s.map(|s| s * 1e3), 3),
            self.serial_s * 1e3,
            self.parallel_s * 1e3,
            self.speedup(),
            json_opt_f64(self.micro_speedup(), 3),
            self.bitwise_equal,
            self.analyzer_flops,
            self.measured_flops.map_or_else(|| "null".to_string(), |m| m.to_string()),
            json_opt_f64(self.flop_rel_err(), 4),
        )
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn bits_f32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A two-layer classifier training graph (matmul / add_row / tanh / matmul
/// / cross-entropy) — the steady-state heap-vs-arena workload.
fn record_train_graph(
    t: &mut Tape,
    store: &ParamStore,
    ids: &[ParamId],
    x: &Tensor,
    targets: &[usize],
) -> Var {
    let xv = t.input(x.clone());
    let w1 = t.param(store, ids[0]);
    let b1 = t.param(store, ids[1]);
    let w2 = t.param(store, ids[2]);
    let h = t.matmul(xv, w1);
    let h = t.add_row(h, b1);
    let h = t.tanh(h);
    let logits = t.matmul(h, w2);
    t.cross_entropy_logits(logits, targets)
}

fn train_store(seed: u64) -> (ParamStore, Vec<ParamId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamStore::new();
    let ids = vec![
        ps.add("w1", Tensor::rand_normal(128, 256, 0.0, 0.1, &mut rng)),
        ps.add("b1", Tensor::zeros(1, 256)),
        ps.add("w2", Tensor::rand_normal(256, 10, 0.0, 0.1, &mut rng)),
    ];
    (ps, ids)
}

struct TrainModeRow {
    ms_per_step: f64,
    allocs_per_step: f64,
    bytes_per_step: f64,
    losses: Vec<u32>,
}

/// Runs `steps` training steps through `step`, timing them and diffing the
/// global tensor-allocation counters across the loop.
fn run_train_mode(steps: usize, mut step: impl FnMut() -> f32) -> TrainModeRow {
    let before = alloc_stats();
    let t0 = Instant::now();
    let losses: Vec<u32> = (0..steps).map(|_| step().to_bits()).collect();
    let elapsed = t0.elapsed().as_secs_f64();
    let d = alloc_stats().since(before);
    let n = steps as f64;
    TrainModeRow {
        ms_per_step: elapsed * 1e3 / n,
        allocs_per_step: d.count as f64 / n,
        bytes_per_step: d.bytes as f64 / n,
        losses,
    }
}

fn main() {
    let threads = parallel::threads();
    let mut rng = StdRng::seed_from_u64(0x6b65);
    let mut rows = Vec::new();

    // 256^3 matmul — the acceptance workload. The scalar baseline is the
    // pinned pre-microkernel kernel; its result is checked against the
    // production output (allclose, not bitwise: the `simd` build's FMA
    // rounds each term once, and the legacy kernel skipped zeros).
    let a = Tensor::rand_normal(256, 256, 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(256, 256, 0.0, 1.0, &mut rng);
    let (scalar_s, scalar) = time_best(|| legacy_scalar_matmul(&a, &b));
    let (ser_s, ser) = time_best(|| a.matmul_serial(&b));
    let (par_s, par) = time_best(|| a.matmul(&b));
    assert!(ser.allclose(&scalar, 1e-2), "microkernel diverged from the legacy scalar kernel");
    rows.push(KernelRow {
        name: "matmul_256x256x256",
        scalar_s: Some(scalar_s),
        serial_s: ser_s,
        parallel_s: par_s,
        bitwise_equal: bits(&ser) == bits(&par),
        analyzer_flops: cost::matmul_flops(256, 256, 256),
        measured_flops: Some(measured_matmul_flops(&a, b.cols())),
    });

    // Fused A B^T (attention scoring shape: seq 128, head dim 64).
    let q = Tensor::rand_normal(128, 64, 0.0, 1.0, &mut rng);
    let k = Tensor::rand_normal(128, 64, 0.0, 1.0, &mut rng);
    let (scalar_s, scalar) = time_best(|| legacy_scalar_matmul_nt(&q, &k));
    let (ser_s, ser) = time_best(|| q.matmul_nt_serial(&k));
    let (par_s, par) = time_best(|| q.matmul_nt(&k));
    assert!(ser.allclose(&scalar, 1e-2), "nt microkernel diverged from the legacy scalar kernel");
    rows.push(KernelRow {
        name: "matmul_nt_128x64_scores",
        scalar_s: Some(scalar_s),
        serial_s: ser_s,
        parallel_s: par_s,
        bitwise_equal: bits(&ser) == bits(&par),
        analyzer_flops: cost::matmul_flops(128, 64, 128),
        measured_flops: Some(measured_matmul_flops(&q, k.rows())),
    });

    // Full attention scoring: softmax(Q K^T) — the row-parallel composite.
    let (ser_s, ser) = time_best(|| q.matmul_nt_serial(&k).softmax_rows_serial());
    let (par_s, par) = time_best(|| q.matmul_nt(&k).softmax_rows());
    rows.push(KernelRow {
        name: "attention_scores_softmax_128",
        scalar_s: None,
        serial_s: ser_s,
        parallel_s: par_s,
        bitwise_equal: bits(&ser) == bits(&par),
        analyzer_flops: cost::matmul_flops(128, 64, 128) + cost::softmax_flops(128, 128),
        measured_flops: None, // transcendental ops are modeled, not counted
    });

    // Row-wise softmax on a larger block.
    let s = Tensor::rand_normal(512, 256, 0.0, 1.0, &mut rng);
    let (ser_s, ser) = time_best(|| s.softmax_rows_serial());
    let (par_s, par) = time_best(|| s.softmax_rows());
    rows.push(KernelRow {
        name: "softmax_rows_512x256",
        scalar_s: None,
        serial_s: ser_s,
        parallel_s: par_s,
        bitwise_equal: bits(&ser) == bits(&par),
        analyzer_flops: cost::softmax_flops(512, 256),
        measured_flops: None,
    });

    let simd = cfg!(feature = "simd");
    println!("kernel timings at {threads} thread(s) (HIERGAT_THREADS to override), simd={simd}:");
    for r in &rows {
        println!(
            "  {:<30} serial {:>8.3} ms  pooled {:>8.3} ms  speedup {:>5.2}x  bitwise {}",
            r.name,
            r.serial_s * 1e3,
            r.parallel_s * 1e3,
            r.speedup(),
            if r.bitwise_equal { "ok" } else { "MISMATCH" },
        );
        if let (Some(scalar_s), Some(micro)) = (r.scalar_s, r.micro_speedup()) {
            println!(
                "  {:<30} legacy scalar {:>8.3} ms  microkernel gain {micro:>5.2}x",
                "",
                scalar_s * 1e3,
            );
        }
        if let (Some(measured), Some(err)) = (r.measured_flops, r.flop_rel_err()) {
            println!(
                "  {:<30} analyzer {} FLOPs vs measured {measured} ({:.2}% off)",
                "",
                r.analyzer_flops,
                err * 100.0,
            );
        }
    }

    let all_bitwise = rows.iter().all(|r| r.bitwise_equal);
    // Only instrumented kernels participate in the estimate audit; an
    // uncovered kernel used to masquerade as a perfect 0.0-error match.
    let covered = rows.iter().filter_map(KernelRow::flop_rel_err).collect::<Vec<f64>>();
    let max_rel_err = covered.iter().copied().fold(0.0f64, f64::max);
    assert!(all_bitwise, "pooled kernels must match serial bitwise");
    assert!(!covered.is_empty(), "no kernel was covered by FLOP instrumentation");
    assert!(max_rel_err <= 0.10, "analyzer FLOP estimate off by {:.1}%", max_rel_err * 100.0);

    // Acceptance floor for the tiled microkernel: the `simd` build must
    // beat the pinned scalar kernel by >= 4x on the 256^3 workload. The
    // portable build reports its gain but is not held to the vector floor.
    let micro = rows[0].micro_speedup().unwrap_or(0.0);
    if simd {
        assert!(
            micro >= 4.0,
            "simd microkernel must be >= 4x over the legacy scalar matmul, got {micro:.2}x"
        );
    }

    // Steady-state training step, heap vs arena. The heap mode re-records
    // an eager tape every step (values materialize during recording); the
    // arena mode replays the cached plan over one deferred tape. Both run
    // the identical graph from identical seeds, so the loss sequences must
    // match bitwise, and the arena replay must allocate no tensors at all.
    const TRAIN_STEPS: usize = 20;
    let x = Tensor::rand_normal(64, 128, 0.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..64).map(|i| i % 10).collect();

    let (mut ps_h, ids_h) = train_store(0xa55a);
    let mut opt_h = Adam::new(1e-3);
    let mut heap_step = || {
        ps_h.zero_grad();
        let mut t = Tape::new();
        let loss = record_train_graph(&mut t, &ps_h, &ids_h, &x, &targets);
        let v = t.value(loss).item();
        t.backward(loss, &mut ps_h);
        ps_h.clip_grad_norm(5.0);
        opt_h.step(&mut ps_h);
        v
    };

    let (mut ps_a, ids_a) = train_store(0xa55a);
    let mut opt_a = Adam::new(1e-3);
    let mut tape = Tape::deferred();
    let loss_a = record_train_graph(&mut tape, &ps_a, &ids_a, &x, &targets);
    let mut exec = ArenaExecutor::new();
    let arena_planned = exec.plan_report(&tape, loss_a).arena_bytes;
    let mut arena_step = || {
        ps_a.zero_grad();
        let v = exec.step(&tape, loss_a, &mut ps_a);
        ps_a.clip_grad_norm(5.0);
        opt_a.step(&mut ps_a);
        v
    };

    // Warm-up: plan construction, arena growth, Adam moment state.
    let (wh, wa) = (heap_step(), arena_step());
    assert_eq!(wh.to_bits(), wa.to_bits(), "warm-up loss diverged: {wh} vs {wa}");
    let heap = run_train_mode(TRAIN_STEPS, heap_step);
    let arena = run_train_mode(TRAIN_STEPS, arena_step);
    let losses_equal = heap.losses == arena.losses;

    println!("training step (two-layer classifier, {TRAIN_STEPS} steps, heap vs arena):");
    println!(
        "  heap  {:>8.3} ms/step  {:>7.1} tensor allocs/step  {:>12.0} bytes/step",
        heap.ms_per_step, heap.allocs_per_step, heap.bytes_per_step,
    );
    println!(
        "  arena {:>8.3} ms/step  {:>7.1} tensor allocs/step  {:>12.0} bytes/step  \
         (plan: {arena_planned} B)",
        arena.ms_per_step, arena.allocs_per_step, arena.bytes_per_step,
    );
    println!("  losses bitwise {}", if losses_equal { "ok" } else { "MISMATCH" });
    assert!(losses_equal, "heap and arena loss sequences must match bitwise");
    assert!(
        arena.allocs_per_step == 0.0,
        "arena steady state must allocate no tensors, saw {}/step",
        arena.allocs_per_step
    );

    // Scoring throughput: the eager predict path (fresh eager tape per
    // pair — every parameter tensor cloned in, every node heap-allocated)
    // vs a runtime Session replaying cached forward-only arena plans.
    // Identical graphs, identical kernels, so the scores must match
    // bitwise while the session skips the per-call allocation work.
    let ds = MagellanDataset::FodorsZagats.load(0.3);
    let pairs: Vec<_> = ds.train.iter().take(24).collect();
    let registry = ModelRegistry::builtin();
    let spec = registry.get("hiergat").expect("hiergat registered");
    let cx = BuildContext { tier: LmTier::MiniDistil, arity: ds.arity().max(1) };
    let mut session = Session::new(spec.build(&cx));
    // Warm the plan cache so the timed loop measures steady-state replay.
    for p in &pairs {
        session.score(Example::Pair(p));
    }
    let (eager_s, eager_scores) = time_best(|| {
        pairs.iter().map(|p| session.model().predict(Example::Pair(p))[0]).collect::<Vec<f32>>()
    });
    let (infer_s, infer_scores) = time_best(|| {
        pairs.iter().map(|p| session.score(Example::Pair(p))[0]).collect::<Vec<f32>>()
    });
    // As-recorded replay (optimiser off): the certified rewrites must not
    // cost throughput, and — being bitwise-exact — must not move a score.
    session.set_optimize(false);
    for p in &pairs {
        session.score(Example::Pair(p));
    }
    let (plain_s, plain_scores) = time_best(|| {
        pairs.iter().map(|p| session.score(Example::Pair(p))[0]).collect::<Vec<f32>>()
    });
    session.set_optimize(true);
    let scores_bitwise = bits_f32(&eager_scores) == bits_f32(&infer_scores)
        && bits_f32(&plain_scores) == bits_f32(&infer_scores);
    let n_pairs = pairs.len() as f64;
    let (eager_pps, infer_pps, plain_pps) =
        (n_pairs / eager_s, n_pairs / infer_s, n_pairs / plain_s);
    let scoring_speedup = eager_s / infer_s;
    let optimize_speedup = plain_s / infer_s;
    let first = Example::Pair(pairs[0]);
    let train_arena = session.model().plan_training(first).arena_bytes;
    let infer_arena = session.model().plan_inference(first).arena_bytes;

    println!("pair scoring (HierGAT pairwise, {} pairs, eager vs inference session):", pairs.len());
    println!("  eager              {eager_pps:>8.1} pairs/s");
    println!("  session (as-rec.)  {plain_pps:>8.1} pairs/s");
    println!(
        "  session (optimised) {infer_pps:>7.1} pairs/s  speedup {scoring_speedup:>5.2}x eager, \
         {optimize_speedup:.2}x as-recorded"
    );
    println!("  peak arena: training plan {train_arena} B, inference plan {infer_arena} B");
    println!("  scores bitwise {}", if scores_bitwise { "ok" } else { "MISMATCH" });
    assert!(scores_bitwise, "session scoring must match eager predictions bitwise");
    assert!(
        infer_arena < train_arena,
        "inference plan ({infer_arena} B) must undercut the training plan ({train_arena} B)"
    );
    assert!(
        scoring_speedup >= 1.3,
        "inference session must score at least 1.3x faster than eager, got {scoring_speedup:.2}x"
    );
    assert!(
        optimize_speedup >= 0.95,
        "optimised replay must not regress pairs/s vs as-recorded, got {optimize_speedup:.2}x"
    );

    // Certified optimiser deltas on the inference scoring graphs: node and
    // FLOP counts must shrink for the paper model and for a baseline.
    let mut opt_rows = Vec::new();
    for name in ["hiergat", "deepmatcher"] {
        let spec = registry.get(name).expect("registered model");
        let model = spec.build(&cx);
        let report = model.optimize_report(first, false);
        assert!(report.all_valid(), "{name}: optimiser certificates must validate");
        assert!(
            report.nodes_after < report.nodes_before,
            "{name}: optimiser must reduce node count ({} -> {})",
            report.nodes_before,
            report.nodes_after
        );
        assert!(
            report.flops_after < report.flops_before,
            "{name}: optimiser must reduce FLOPs ({} -> {})",
            report.flops_before,
            report.flops_after
        );
        println!(
            "optimiser ({name}): nodes {} -> {}, flops {} -> {}, {} certified rewrites",
            report.nodes_before,
            report.nodes_after,
            report.flops_before,
            report.flops_after,
            report.rewrites(),
        );
        opt_rows.push((name, report));
    }

    // Quantised session: the same model and pairs, with the weights
    // quantised off the absint feasibility table. Measured side by side
    // with the f32 session rows above so run_benches.sh can gate the
    // floor: throughput must hold and the storage footprint must shrink.
    let qreport = session
        .quantise(first, &hiergat_nn::QuantConfig::default())
        .expect("hiergat session must quantise");
    for p in &pairs {
        session.score(Example::Pair(p));
    }
    let (quant_s, quant_scores) = time_best(|| {
        pairs.iter().map(|p| session.score(Example::Pair(p))[0]).collect::<Vec<f32>>()
    });
    let quant_pps = n_pairs / quant_s;
    let quant_speedup = infer_s / quant_s;
    let quant_drift =
        quant_scores.iter().zip(&infer_scores).map(|(q, f)| (q - f).abs()).fold(0.0f32, f32::max);
    println!("quantised scoring (same session, absint-driven int8/f16 storage):");
    println!(
        "  session (quantised) {quant_pps:>7.1} pairs/s  {quant_speedup:.2}x optimised f32 session"
    );
    println!(
        "  weights {} -> {} B  arena {} -> {} B  max score drift {quant_drift:.4}",
        qreport.weights.bytes_f32,
        qreport.weights.bytes_quantised,
        qreport.f32_arena_bytes,
        qreport.arena_bytes,
    );
    assert!(
        qreport.arena_bytes < qreport.f32_arena_bytes,
        "quantised arena ({} B) must undercut the f32 inference arena ({} B)",
        qreport.arena_bytes,
        qreport.f32_arena_bytes
    );
    assert!(
        qreport.weights.bytes_quantised < qreport.weights.bytes_f32,
        "quantised weights must shrink"
    );
    assert!(quant_drift < 0.05, "quantised scores drifted {quant_drift} from the f32 session");

    let body: Vec<String> = rows.iter().map(KernelRow::json).collect();
    let train_json = format!(
        "  \"train_step\": {{\"graph\": \"mlp_64x128x256x10\", \"steps\": {TRAIN_STEPS}, \
         \"heap_ms_per_step\": {:.3}, \"heap_allocs_per_step\": {:.1}, \
         \"heap_bytes_per_step\": {:.0}, \"arena_ms_per_step\": {:.3}, \
         \"arena_allocs_per_step\": {:.1}, \"arena_bytes_per_step\": {:.0}, \
         \"arena_planned_bytes\": {arena_planned}, \"loss_bitwise_equal\": {losses_equal}}},",
        heap.ms_per_step,
        heap.allocs_per_step,
        heap.bytes_per_step,
        arena.ms_per_step,
        arena.allocs_per_step,
        arena.bytes_per_step,
    );
    let scoring_json = format!(
        "  \"scoring\": {{\"model\": \"hiergat-pairwise\", \"pairs\": {}, \
         \"eager_pairs_per_s\": {eager_pps:.1}, \"session_pairs_per_s\": {infer_pps:.1}, \
         \"unoptimized_session_pairs_per_s\": {plain_pps:.1}, \
         \"speedup\": {scoring_speedup:.3}, \"optimize_speedup\": {optimize_speedup:.3}, \
         \"bitwise_equal\": {scores_bitwise}, \
         \"train_peak_arena_bytes\": {train_arena}, \
         \"infer_peak_arena_bytes\": {infer_arena}}},",
        pairs.len(),
    );
    let quantised_json = format!(
        "  \"quantised\": {{\"model\": \"hiergat-pairwise\", \"pairs\": {}, \
         \"quantised_pairs_per_s\": {quant_pps:.1}, \"f32_session_pairs_per_s\": {infer_pps:.1}, \
         \"speedup_vs_f32_session\": {quant_speedup:.3}, \
         \"weight_bytes_f32\": {}, \"weight_bytes_quantised\": {}, \
         \"arena_bytes_f32\": {}, \"arena_bytes_quantised\": {}, \
         \"max_score_drift\": {quant_drift:.6}}},",
        pairs.len(),
        qreport.weights.bytes_f32,
        qreport.weights.bytes_quantised,
        qreport.f32_arena_bytes,
        qreport.arena_bytes,
    );
    let opt_body: Vec<String> = opt_rows
        .iter()
        .map(|(name, r)| {
            format!(
                "    {{\"model\": \"{name}\", \"nodes_before\": {}, \"nodes_after\": {}, \
                 \"flops_before\": {}, \"flops_after\": {}, \"rewrites\": {}, \
                 \"certificates_valid\": {}}}",
                r.nodes_before,
                r.nodes_after,
                r.flops_before,
                r.flops_after,
                r.rewrites(),
                r.all_valid(),
            )
        })
        .collect();
    let optimize_json = format!("  \"optimize\": [\n{}\n  ],", opt_body.join(",\n"));
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"simd\": {simd},\n  \
         \"all_bitwise_equal\": {all_bitwise},\n  \
         \"max_flop_rel_err\": {max_rel_err:.4},\n{train_json}\n{scoring_json}\n{quantised_json}\n{optimize_json}\n  \
         \"kernels\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
    );
    // cargo runs benches with cwd = package dir; anchor at the workspace root.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    std::fs::write(&out, &json).expect("write BENCH_kernels.json");
    println!("wrote {}", out.display());
}
