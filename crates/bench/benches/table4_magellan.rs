//! Table 4 — F1 on the Magellan datasets (clean + dirty):
//! Magellan, DeepMatcher, Ditto, HierGAT.

use hiergat::HierGatConfig;
use hiergat_bench::*;
use hiergat_data::MagellanDataset;
use hiergat_lm::LmTier;

/// `(dataset, paper MG, paper DM, paper Ditto, paper HG)`.
const PAPER_CLEAN: &[(MagellanDataset, f64, f64, f64, f64)] = &[
    (MagellanDataset::Beer, 78.8, 72.7, 84.6, 93.3),
    (MagellanDataset::ItunesAmazon, 91.2, 88.5, 92.3, 96.3),
    (MagellanDataset::FodorsZagats, 100.0, 100.0, 98.1, 100.0),
    (MagellanDataset::DblpAcm, 98.4, 98.4, 99.0, 99.1),
    (MagellanDataset::DblpScholar, 92.3, 94.7, 95.8, 96.3),
    (MagellanDataset::AmazonGoogle, 49.1, 69.3, 74.1, 76.4),
    (MagellanDataset::WalmartAmazon, 71.9, 67.6, 85.8, 88.2),
    (MagellanDataset::AbtBuy, 43.6, 62.8, 88.9, 89.8),
    (MagellanDataset::Company, 79.8, 92.7, 87.5, 88.2),
];

const PAPER_DIRTY: &[(MagellanDataset, f64, f64, f64, f64)] = &[
    (MagellanDataset::ItunesAmazon, 46.8, 79.4, 92.9, 94.7),
    (MagellanDataset::DblpAcm, 91.9, 98.1, 98.9, 99.1),
    (MagellanDataset::DblpScholar, 82.5, 93.8, 95.4, 95.8),
    (MagellanDataset::WalmartAmazon, 37.4, 53.8, 82.6, 86.3),
];

fn run_block(rows: &[(MagellanDataset, f64, f64, f64, f64)], dirty: bool) {
    let scale = bench_scale();
    for &(kind, p_mg, p_dm, p_ditto, p_hg) in rows {
        let ds = if dirty { kind.load_dirty(scale) } else { kind.load(scale) };
        let pre = pretrain_for(&ds, LmTier::MiniBase);
        let mg = run_magellan(&ds);
        let dm = run_deepmatcher(&ds);
        let ditto = run_ditto(&ds, LmTier::MiniBase, Some(&pre));
        let hg = run_hiergat(&ds, HierGatConfig::pairwise(), Some(&pre));
        let tag = if dirty { "Dirty-" } else { "" };
        println!("{tag}{}:", kind.name());
        row("Magellan", p_mg, mg);
        row("DeepMatcher", p_dm, dm);
        row("Ditto", p_ditto, ditto);
        row("HierGAT", p_hg, hg);
    }
}

fn main() {
    banner("Table 4 — F1 on the Magellan datasets (Magellan / DM / Ditto / HierGAT)");
    run_block(PAPER_CLEAN, false);
    println!("\n-- dirty variants --");
    run_block(PAPER_DIRTY, true);
}
