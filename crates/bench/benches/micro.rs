//! Criterion micro-benchmarks over the substrate: tensor kernels, HHG
//! construction, blocking throughput, and one training step per model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hiergat::{HierGat, HierGatConfig};
use hiergat_baselines::{DeepMatcher, DeepMatcherConfig, Ditto, DittoConfig, PairModel};
use hiergat_blocking::TfIdfBlocker;
use hiergat_data::MagellanDataset;
use hiergat_graph::Hhg;
use hiergat_lm::LmTier;
use hiergat_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tensor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::rand_normal(64, 64, 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(64, 64, 0.0, 1.0, &mut rng);
    c.bench_function("tensor/matmul_64x64", |bch| bch.iter(|| a.matmul(&b)));
    let seq = Tensor::rand_normal(32, 64, 0.0, 1.0, &mut rng);
    c.bench_function("tensor/softmax_rows_32x64", |bch| bch.iter(|| seq.softmax_rows()));
}

fn bench_graph(c: &mut Criterion) {
    let ds = MagellanDataset::WalmartAmazon.load(0.2);
    let pair = ds.train[0].clone();
    c.bench_function("graph/hhg_from_pair", |bch| {
        bch.iter(|| Hhg::from_pair(&pair));
    });
}

fn bench_blocking(c: &mut Criterion) {
    let ds = MagellanDataset::AmazonGoogle.load(0.5);
    let table: Vec<_> = ds.train.iter().map(|p| p.right.clone()).collect();
    let blocker = TfIdfBlocker::fit(&table);
    let query = ds.train[0].left.clone();
    c.bench_function("blocking/tfidf_top16", |bch| {
        bch.iter(|| blocker.top_n(&query, 16));
    });
}

fn bench_models(c: &mut Criterion) {
    let ds = MagellanDataset::AmazonGoogle.load(0.2);
    let pair = ds.train.iter().find(|p| p.label).cloned().unwrap_or_else(|| ds.train[0].clone());

    c.bench_function("model/deepmatcher_train_step", |bch| {
        bch.iter_batched(
            || DeepMatcher::new(DeepMatcherConfig::default(), ds.arity()),
            |mut dm| dm.train_pair(&pair),
            BatchSize::LargeInput,
        );
    });
    c.bench_function("model/ditto_train_step", |bch| {
        bch.iter_batched(
            || Ditto::new(DittoConfig { lm_tier: LmTier::MiniDistil, ..Default::default() }),
            |mut d| d.train_pair(&pair),
            BatchSize::LargeInput,
        );
    });
    c.bench_function("model/hiergat_train_step", |bch| {
        bch.iter_batched(
            || HierGat::new(HierGatConfig::fast_test(), ds.arity()),
            |mut hg| hg.train_pair(&pair),
            BatchSize::LargeInput,
        );
    });
    let mut hg = HierGat::new(HierGatConfig::fast_test(), ds.arity());
    c.bench_function("model/hiergat_predict", |bch| bch.iter(|| hg.predict_pair(&pair)));
    let _ = &mut hg;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tensor, bench_graph, bench_blocking, bench_models
}
criterion_main!(benches);
