//! Table 8 — collective models across three LM sizes:
//! Ditto vs HierGAT vs HierGAT+ on the five collective Magellan datasets.

use hiergat::HierGatConfig;
use hiergat_baselines::flatten_collective;
use hiergat_bench::*;
use hiergat_data::MagellanDataset;
use hiergat_lm::LmTier;

/// Paper F1 for one tier: `(Ditto, HierGAT, HierGAT+)`.
type TierF1 = (f64, f64, f64);

/// `(dataset, per-tier paper F1)` in tier order.
const PAPER: &[(MagellanDataset, [TierF1; 3])] = &[
    (MagellanDataset::ItunesAmazon, [(47.5, 57.1, 58.2), (7.1, 11.1, 54.2), (58.8, 61.8, 65.6)]),
    (MagellanDataset::DblpAcm, [(98.8, 98.9, 99.2), (98.2, 98.8, 99.4), (98.9, 99.1, 99.6)]),
    (MagellanDataset::AmazonGoogle, [(75.6, 76.4, 81.5), (77.6, 78.0, 83.0), (78.3, 80.7, 86.9)]),
    (MagellanDataset::WalmartAmazon, [(80.8, 81.0, 88.6), (85.2, 85.6, 92.3), (85.9, 90.6, 93.9)]),
    (MagellanDataset::AbtBuy, [(82.6, 83.5, 92.2), (88.3, 89.5, 92.9), (90.9, 91.1, 94.8)]),
];

fn main() {
    banner("Table 8 — collective F1 across LM sizes (Ditto / HierGAT / HierGAT+)");
    let scale = bench_scale() * 0.35;
    for &(kind, paper) in PAPER {
        let ds = kind.load_collective(scale);
        let flat = flatten_collective(&ds);
        let arity = collective_arity(&ds);
        println!("{}:", kind.short_name());
        for (tier, (p_ditto, p_hg, p_hgp)) in LmTier::all().into_iter().zip(paper) {
            let pre = pretrain_for(&flat, tier);
            let ditto = run_ditto(&flat, tier, Some(&pre));
            let hg = run_hiergat(&flat, HierGatConfig::pairwise().with_tier(tier), Some(&pre));
            let hgp = run_hiergat_collective(
                &ds,
                HierGatConfig::collective().with_tier(tier),
                arity,
                Some(&pre),
            );
            row(&format!("{} Ditto", tier.name()), p_ditto, ditto);
            row(&format!("{} HierGAT", tier.name()), p_hg, hg);
            row(&format!("{} HierGAT+", tier.name()), p_hgp, hgp);
        }
    }
}
