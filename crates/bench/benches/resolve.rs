//! Corpus-scale streaming resolve benchmark (DESIGN.md §18).
//!
//! Emits `BENCH_resolve.json` in the repo root with two experiments:
//!
//! * **scale** — the full streaming pipeline (sharded TF-IDF blocking →
//!   cosine cascade → union-find clustering) over a synthetic DI2KG-style
//!   corpus, 10^6 records by default. Reports throughput (entities/s,
//!   candidates/s), a peak-RSS proxy (fitted index + largest in-flight
//!   batch + clustering state — the pair matrix is never materialised),
//!   and pairwise cluster P/R/F1 against the generator's gold ids.
//! * **band** — the full trio on a smaller corpus: a HierGAT session,
//!   trained on pairs drawn from a *disjoint* corpus seed, adjudicates
//!   the ambiguous cosine band. Reports model call counts and the
//!   cluster F1 with and without the model so the cascade's contribution
//!   is visible.
//!
//! Sizing: `HIERGAT_RESOLVE_ENTITIES` pins the scale corpus directly;
//! otherwise 10^6 × `HIERGAT_BENCH_SCALE`. `run_benches.sh` holds the
//! output to entities/s and cluster-F1 floors.

use hiergat::{train_pairwise, HierGat, HierGatConfig};
use hiergat_bench::{banner, bench_epochs, bench_scale, pretrain_for};
use hiergat_blocking::{TfIdfCandidates, TfIdfSourceConfig};
use hiergat_data::{CorpusConfig, EntityPair, PairDataset, SynthCorpus};
use hiergat_lm::LmTier;
use hiergat_metrics::{pairwise_cluster_metrics, PrF1};
use hiergat_runtime::{resolve, HierGatPairwise, Resolution, ResolveConfig, Session};
use std::time::Instant;

/// Cosine-only operating point for small corpora (≤ a few thousand
/// records) from the DESIGN.md §18 threshold sweep.
const COSINE_ACCEPT: f32 = 0.55;
/// Scale-corpus operating point. The optimal accept is scale-dependent:
/// with 10^5+ products drawn from a finite lexicon, distinct products
/// increasingly share brand/name tokens, and transitive closure amplifies
/// every false merge — 0.55 holds F1 0.85 at 3k records but collapses to
/// precision 0.15 at 1M, while 0.7 holds F1 0.82–0.91 from 10k to 1M.
const SCALE_ACCEPT: f32 = 0.7;
/// Cascade operating point: auto-accept at the tuned cosine threshold,
/// model adjudicates the band *below* it — the model can only add recall
/// the cosine stage dropped, never lose pairs cosine would have kept.
const BAND_ACCEPT: f32 = COSINE_ACCEPT;
const BAND: (f32, f32) = (0.4, COSINE_ACCEPT);

fn scale_entities() -> usize {
    if let Some(n) = std::env::var("HIERGAT_RESOLVE_ENTITIES").ok().and_then(|v| v.parse().ok()) {
        return n;
    }
    // Floor of 10k: SCALE_ACCEPT is tuned for collision rates at 10^4+.
    ((1_000_000f64 * bench_scale()) as usize).max(10_000)
}

fn corpus(n: usize, seed: u64) -> SynthCorpus {
    SynthCorpus::new(CorpusConfig { n_records: n, copies: 3, family_size: 4, seed })
}

fn source_config() -> TfIdfSourceConfig {
    TfIdfSourceConfig {
        top_n: 8,
        min_score: 0.15,
        n_shards: 8,
        max_df: Some(0.01),
        fit_chunk: 8192,
    }
}

struct Run {
    fit_secs: f64,
    index_bytes: u64,
    resolution: Resolution,
    pr: PrF1,
}

fn run_resolve(corpus: &SynthCorpus, session: Option<&mut Session>, cfg: &ResolveConfig) -> Run {
    let fit_start = Instant::now();
    let src = TfIdfCandidates::fit_dedup(corpus, &source_config());
    let fit_secs = fit_start.elapsed().as_secs_f64();
    let index_bytes = src.memory_bytes();
    let resolution = resolve(&src, corpus, session, cfg);
    let pr = pairwise_cluster_metrics(&resolution.labels, &corpus.gold_labels()).pr_f1();
    Run { fit_secs, index_bytes, resolution, pr }
}

/// Labeled pairs mined from the cosine band of a corpus — exactly the
/// distribution the session will adjudicate at resolve time. Blocking is
/// run on the training corpus, candidate pairs with cosine in [`BAND`]
/// are collected, and the generator's gold ids supply labels (noisy
/// copies of one product → positive; vocabulary-sharing siblings →
/// negative).
fn band_pair_pool(corpus: &SynthCorpus, cap: usize) -> Vec<EntityPair> {
    use hiergat_blocking::CandidateSource;
    let src = TfIdfCandidates::fit_dedup(corpus, &source_config());
    let mut edges: Vec<(u32, u32)> = Vec::new();
    src.for_each_batch(1024, |batch| {
        for qc in batch {
            for c in &qc.candidates {
                if c.score >= BAND.0 && c.score < BAND.1 {
                    edges.push((qc.query.min(c.id) as u32, qc.query.max(c.id) as u32));
                }
            }
        }
    });
    edges.sort_unstable();
    edges.dedup();
    edges
        .iter()
        .take(cap)
        .map(|&(a, b)| {
            EntityPair::new(
                corpus.entity(a as usize),
                corpus.entity(b as usize),
                corpus.gold(a as usize) == corpus.gold(b as usize),
            )
        })
        .collect()
}

/// The lowest threshold whose precision on `pairs` clears `floor`
/// (ties broken toward higher recall). Falls back to just above the top
/// score — "accept nothing" — if no cut qualifies.
fn precision_floor_threshold(scores: &[f32], pairs: &[EntityPair], floor: f64) -> f32 {
    let mut ranked: Vec<(f32, bool)> =
        scores.iter().copied().zip(pairs.iter().map(|p| p.label)).collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut best = ranked.first().map_or(1.0, |&(s, _)| s + 1e-3);
    let (mut tp, mut fp) = (0u64, 0u64);
    for i in 0..ranked.len() {
        if ranked[i].1 {
            tp += 1;
        } else {
            fp += 1;
        }
        // Only cut *between* distinct scores: a threshold cannot split ties.
        if i + 1 < ranked.len() && ranked[i + 1].0 == ranked[i].0 {
            continue;
        }
        if tp as f64 / (tp + fp) as f64 >= floor {
            best = ranked[i].0;
        }
    }
    best
}

fn main() {
    banner("resolve: corpus-scale streaming pipeline (DESIGN.md section 18)");

    // --- scale experiment: cosine-only cascade at full corpus size -----
    let n = scale_entities();
    println!("  scale corpus: {n} records (copies=3, family=4, seed=11)");
    let big = corpus(n, 11);
    let cfg = ResolveConfig { batch_size: 2048, accept: SCALE_ACCEPT, ..ResolveConfig::default() };
    let scale = run_resolve(&big, None, &cfg);
    let s = &scale.resolution.stats;
    // Clustering state: labels (u32) + union-find parent (u32) + rank (u8).
    let cluster_bytes = (n as u64) * 9;
    let peak_rss = scale.index_bytes + s.batch_peak_bytes + cluster_bytes;
    let entities_per_s = n as f64 / (scale.fit_secs + s.total_secs);
    let candidates_per_s = s.candidates as f64 / s.total_secs;
    println!(
        "  fit {:.1}s  resolve {:.1}s  {:.0} entities/s  {:.0} candidates/s",
        scale.fit_secs, s.total_secs, entities_per_s, candidates_per_s
    );
    println!(
        "  clusters {}  P {:.3}  R {:.3}  F1 {:.3}  peak-RSS proxy {:.1} MB",
        s.clusters,
        scale.pr.precision,
        scale.pr.recall,
        scale.pr.f1,
        peak_rss as f64 / 1e6
    );

    // --- band experiment: trained session adjudicates the ambiguous band
    // Floor of 1200: below ~1k records the max_df=0.01 stop-term cutoff
    // (df <= 12 docs) prunes discriminative brand/category tokens and the
    // cosine stage collapses, which measures the pruner, not the cascade.
    let band_n = ((4_000f64 * bench_scale()) as usize).clamp(1_200, 20_000);
    let small = corpus(band_n, 11);
    // Disjoint seed (no leakage), sized at 2× the eval corpus: the band's
    // positive/negative mix tracks the product-collision rate, which grows
    // with corpus size — training on a much smaller corpus leaves the
    // threshold miscalibrated (too few negative band pairs to tune on),
    // so the training band must be at least as collision-rich as eval.
    let train_corpus = corpus((band_n * 2).max(2_400), 7);
    let ds = PairDataset::split_3_1_1("synth-resolve", band_pair_pool(&train_corpus, 1_200), 0xE5);
    let pre = pretrain_for(&ds, LmTier::MiniDistil);
    let mut model = HierGat::new(
        HierGatConfig::pairwise().with_tier(LmTier::MiniDistil).with_epochs(bench_epochs()),
        ds.arity().max(1),
    );
    model.load_pretrained(&pre);
    let report = train_pairwise(&mut model, &ds);
    println!(
        "  band model: trained on seed-7 pairs, pair test F1 {:.3} (threshold {:.2})",
        report.test_f1,
        model.decision_threshold()
    );

    let cosine_small =
        run_resolve(&small, None, &ResolveConfig { accept: COSINE_ACCEPT, ..cfg.clone() });
    let mut session = Session::new(Box::new(HierGatPairwise(model)));
    // Re-tune the decision threshold for *clustering*: the training-time
    // threshold maximises pair F1, but transitive closure amplifies every
    // false accept (one bad edge chains two clusters), so the band wants
    // the precision-biased operating point — the lowest validation
    // threshold with precision >= 0.97.
    let valid_scores = session.score_pairs(&ds.valid);
    session.set_threshold(precision_floor_threshold(&valid_scores, &ds.valid, 0.97));
    println!("  cluster-safe threshold {:.2}", session.threshold());
    let band_cfg =
        ResolveConfig { batch_size: 512, score_chunk: 128, accept: BAND_ACCEPT, band: Some(BAND) };
    let band = run_resolve(&small, Some(&mut session), &band_cfg);
    let b = &band.resolution.stats;
    println!(
        "  band corpus {band_n}: cosine-only F1 {:.3} vs band F1 {:.3} \
         (model scored {} pairs, accepted {}, {} skipped as connected)",
        cosine_small.pr.f1, band.pr.f1, b.model_scored, b.model_accepted, b.band_skipped_connected
    );

    let json = format!(
        "{{\n  \"entities\": {n},\n  \"fit_secs\": {:.3},\n  \"resolve_secs\": {:.3},\n  \
         \"entities_per_s\": {:.1},\n  \"candidates_per_s\": {:.1},\n  \
         \"candidates\": {},\n  \"cosine_accepted\": {},\n  \"merges\": {},\n  \
         \"clusters\": {},\n  \"index_bytes\": {},\n  \"batch_peak_bytes\": {},\n  \
         \"peak_rss_proxy_bytes\": {},\n  \"cluster_precision\": {:.4},\n  \
         \"cluster_recall\": {:.4},\n  \"cluster_f1\": {:.4},\n  \"band\": {{\n    \
         \"entities\": {band_n},\n    \"model_pair_test_f1\": {:.4},\n    \
         \"model_scored\": {},\n    \"model_accepted\": {},\n    \
         \"band_skipped_connected\": {},\n    \"scoring_secs\": {:.3},\n    \
         \"cosine_f1\": {:.4},\n    \"band_f1\": {:.4}\n  }}\n}}\n",
        scale.fit_secs,
        s.total_secs,
        entities_per_s,
        candidates_per_s,
        s.candidates,
        s.cosine_accepted,
        s.merges,
        s.clusters,
        scale.index_bytes,
        s.batch_peak_bytes,
        peak_rss,
        scale.pr.precision,
        scale.pr.recall,
        scale.pr.f1,
        report.test_f1,
        b.model_scored,
        b.model_accepted,
        b.band_skipped_connected,
        b.scoring_secs,
        cosine_small.pr.f1,
        band.pr.f1,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_resolve.json");
    std::fs::write(&out, &json).expect("write BENCH_resolve.json");
    println!("  wrote {}", out.display());
}
