//! Figure 11 — training time vs dataset size x average record length.
//!
//! The paper's claims: training time grows linearly in total text volume;
//! Ditto is the fastest Transformer model (it ignores structure); HierGAT
//! and DeepMatcher pay for per-attribute processing; HierGAT+ costs ~3.5%
//! more than HierGAT for alignment. Absolute seconds are hardware-specific
//! (the paper used a V100); the orderings and growth shape are what this
//! harness reproduces.

use hiergat::{train_collective, train_pairwise, HierGat, HierGatConfig};
use hiergat_baselines::{train_pair_model, DeepMatcher, DeepMatcherConfig, Ditto, DittoConfig};
use hiergat_bench::*;
use hiergat_data::MagellanDataset;
use hiergat_lm::LmTier;

fn main() {
    banner("Figure 11 — per-epoch training time vs dataset size x avg length");
    let scale = bench_scale() * 0.5;
    let datasets = [
        MagellanDataset::FodorsZagats,
        MagellanDataset::AmazonGoogle,
        MagellanDataset::AbtBuy,
        MagellanDataset::Company,
    ];
    println!(
        "  {:<16} {:>10} {:>8} {:>8} {:>8} {:>9}",
        "dataset", "size*len", "DM s/ep", "Ditto", "HG", "HG+ oh%"
    );
    for kind in datasets {
        let ds = kind.load(scale);
        let volume = ds.len() as f64 * ds.avg_token_len();

        let mut dm =
            DeepMatcher::new(DeepMatcherConfig { epochs: 2, ..Default::default() }, ds.arity());
        let dm_t = mean_epoch(&train_pair_model(&mut dm, &ds).per_epoch_seconds);

        let mut ditto =
            Ditto::new(DittoConfig { lm_tier: LmTier::MiniBase, epochs: 2, ..Default::default() });
        let ditto_t = mean_epoch(&train_pair_model(&mut ditto, &ds).per_epoch_seconds);

        let mut hg = HierGat::new(HierGatConfig::pairwise().with_epochs(2), ds.arity());
        let hg_t = mean_epoch(&train_pairwise(&mut hg, &ds).per_epoch_seconds);

        // HierGAT+ overhead on the collective version (alignment layer).
        let cds = if kind == MagellanDataset::Company {
            None // no raw tables in the paper either
        } else {
            Some(kind.load_collective(scale * 0.5))
        };
        let overhead = cds.map_or_else(
            || "-".to_string(),
            |cds| {
                let arity = collective_arity(&cds);
                let mut plain = HierGat::new(
                    HierGatConfig { use_alignment: false, ..HierGatConfig::collective() }
                        .with_epochs(2),
                    arity,
                );
                let t_plain = mean_epoch(&train_collective(&mut plain, &cds).per_epoch_seconds);
                let mut plus = HierGat::new(HierGatConfig::collective().with_epochs(2), arity);
                let t_plus = mean_epoch(&train_collective(&mut plus, &cds).per_epoch_seconds);
                format!("{:+.1}", ((t_plus / t_plain) - 1.0) * 100.0)
            },
        );

        println!(
            "  {:<16} {:>10.0} {:>8.2} {:>8.2} {:>8.2} {:>9}",
            kind.name(),
            volume,
            dm_t,
            ditto_t,
            hg_t,
            overhead
        );
    }
    println!("\npaper claims: Ditto fastest (structure-agnostic); HierGAT linear in");
    println!("text volume; HierGAT+ ~ +3.5% over HierGAT for alignment.");
}

fn mean_epoch(secs: &[f64]) -> f64 {
    if secs.is_empty() {
        0.0
    } else {
        secs.iter().sum::<f64>() / secs.len() as f64
    }
}
