//! Figure 9 — attention visualization for example Amazon-Google pairs.
//!
//! Trains HierGAT on the Amazon-Google stand-in, then renders per-token and
//! per-attribute attention heat maps for two test pairs (one match, one
//! non-match). The paper's claim: discriminative words and the title
//! attribute receive visibly higher attention.

use hiergat::{explain_pair, train_pairwise, HierGat, HierGatConfig};
use hiergat_bench::*;
use hiergat_data::MagellanDataset;
use hiergat_lm::LmTier;

fn main() {
    banner("Figure 9 — HierGAT attention visualization (Amazon-Google)");
    let ds = MagellanDataset::AmazonGoogle.load(bench_scale());
    let pre = pretrain_for(&ds, LmTier::MiniBase);
    let mut hg = HierGat::new(HierGatConfig::pairwise().with_epochs(bench_epochs()), ds.arity());
    hg.load_pretrained(&pre);
    let report = train_pairwise(&mut hg, &ds);
    println!("trained HierGAT, test F1 = {:.1}", report.test_f1 * 100.0);

    let matched = ds.test.iter().find(|p| p.label);
    let unmatched = ds.test.iter().find(|p| !p.label);
    for (label, pair) in [("MATCH", matched), ("NON-MATCH", unmatched)] {
        let Some(pair) = pair else { continue };
        println!("\n--- {label} pair ---");
        println!("left:  {}", pair.left.serialize_ditto());
        println!("right: {}", pair.right.serialize_ditto());
        let ex = explain_pair(&mut hg, pair);
        println!("{}", ex.render());
        if let Some(top) = ex.top_attribute() {
            println!("most-attended attribute: {top}");
        }
    }
    println!(
        "\npaper's qualitative claim: title attribute and discriminative words \
         (model codes) receive the highest attention."
    );
}
