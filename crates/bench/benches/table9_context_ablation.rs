//! Table 9 — contextual-embedding ablation for HierGAT+:
//! full Context vs Non-Entity vs Non-Attribute vs Non-Context.

use hiergat::HierGatConfig;
use hiergat_baselines::flatten_collective;
use hiergat_bench::*;
use hiergat_data::{load_di2kg, CollectiveDataset, Di2kgCategory, MagellanDataset};
use hiergat_lm::LmTier;

/// `(name, paper [Context, Non-Entity, Non-Attribute, Non-Context])`.
const PAPER: &[(&str, [f64; 4])] = &[
    ("I-A", [64.7, 63.3, 64.6, 62.6]),
    ("D-A", [99.6, 99.4, 99.4, 99.0]),
    ("A-G", [83.1, 82.1, 81.9, 81.4]),
    ("W-A", [89.2, 88.9, 88.8, 87.8]),
    ("A-B", [92.9, 91.9, 92.2, 91.3]),
    ("camera", [99.6, 99.5, 99.6, 99.4]),
    ("monitor", [99.4, 99.3, 99.3, 99.0]),
];

fn variants() -> [(&'static str, HierGatConfig); 4] {
    let full = HierGatConfig::collective();
    [
        ("Context", full),
        ("Non-Entity", HierGatConfig { use_entity_context: false, ..full }),
        ("Non-Attribute", HierGatConfig { use_attr_context: false, ..full }),
        (
            "Non-Context",
            HierGatConfig {
                use_token_context: false,
                use_attr_context: false,
                use_entity_context: false,
                ..full
            },
        ),
    ]
}

fn run_dataset(name: &str, ds: &CollectiveDataset, paper: &[f64; 4]) {
    println!("{name}:");
    let flat = flatten_collective(ds);
    let pre = pretrain_for(&flat, LmTier::MiniBase);
    let arity = collective_arity(ds);
    for ((vname, cfg), &p) in variants().into_iter().zip(paper) {
        let f1 = run_hiergat_collective(ds, cfg, arity, Some(&pre));
        row(vname, p, f1);
    }
}

fn main() {
    banner("Table 9 — contextual-embedding ablation (HierGAT+)");
    let scale = bench_scale() * 0.3;
    let magellan = [
        MagellanDataset::ItunesAmazon,
        MagellanDataset::DblpAcm,
        MagellanDataset::AmazonGoogle,
        MagellanDataset::WalmartAmazon,
        MagellanDataset::AbtBuy,
    ];
    for (kind, (name, paper)) in magellan.into_iter().zip(PAPER) {
        let ds = kind.load_collective(scale);
        run_dataset(name, &ds, paper);
    }
    for (cat, (name, paper)) in
        [Di2kgCategory::Camera, Di2kgCategory::Monitor].into_iter().zip(&PAPER[5..])
    {
        let ds = load_di2kg(cat, scale);
        run_dataset(name, &ds, paper);
    }
}
