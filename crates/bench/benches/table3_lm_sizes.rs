//! Table 3 — Ditto vs HierGAT across three language-model sizes
//! (DistilBERT / RoBERTa / RoBERTa-Large stand-ins), clean + dirty.

use hiergat::HierGatConfig;
use hiergat_bench::*;
use hiergat_data::MagellanDataset;
use hiergat_lm::LmTier;

/// `(dataset, per-tier (paper Ditto, paper HG))` in tier order
/// DBERT, RoBERTa, LRoBERTa.
const PAPER_CLEAN: &[(MagellanDataset, [(f64, f64); 3])] = &[
    (MagellanDataset::Beer, [(82.5, 88.0), (74.2, 92.3), (90.3, 93.3)]),
    (MagellanDataset::ItunesAmazon, [(91.5, 92.6), (92.1, 96.2), (94.3, 96.3)]),
    (MagellanDataset::FodorsZagats, [(97.3, 100.0), (98.1, 100.0), (100.0, 100.0)]),
    (MagellanDataset::DblpAcm, [(98.5, 98.8), (98.9, 99.1), (98.2, 99.2)]),
    (MagellanDataset::DblpScholar, [(94.9, 95.2), (95.5, 96.0), (95.5, 96.2)]),
    (MagellanDataset::AmazonGoogle, [(71.4, 74.6), (65.9, 76.0), (74.3, 76.8)]),
    (MagellanDataset::WalmartAmazon, [(79.8, 82.5), (85.8, 88.2), (84.9, 88.5)]),
    (MagellanDataset::AbtBuy, [(82.5, 84.4), (88.9, 89.8), (92.2, 93.3)]),
    (MagellanDataset::Company, [(48.0, 50.4), (77.8, 82.3), (91.2, 92.9)]),
];

const PAPER_DIRTY: &[(MagellanDataset, [(f64, f64); 3])] = &[
    (MagellanDataset::ItunesAmazon, [(90.1, 92.1), (92.9, 94.6), (87.2, 94.6)]),
    (MagellanDataset::DblpAcm, [(98.6, 98.8), (98.8, 99.1), (98.7, 99.1)]),
    (MagellanDataset::DblpScholar, [(94.8, 95.2), (95.4, 95.2), (95.5, 95.7)]),
    (MagellanDataset::WalmartAmazon, [(77.9, 78.7), (82.6, 86.3), (85.5, 87.6)]),
];

fn run_block(rows: &[(MagellanDataset, [(f64, f64); 3])], dirty: bool) {
    // Table 3 sweeps 13 datasets x 3 tiers x 2 models; run at reduced size.
    let scale = bench_scale() * 0.6;
    for &(kind, paper) in rows {
        let ds = if dirty { kind.load_dirty(scale) } else { kind.load(scale) };
        let tag = if dirty { "Dirty-" } else { "" };
        println!("{tag}{}:", kind.name());
        for (tier, (p_ditto, p_hg)) in LmTier::all().into_iter().zip(paper) {
            let pre = pretrain_for(&ds, tier);
            let ditto = run_ditto(&ds, tier, Some(&pre));
            let hg = run_hiergat(&ds, HierGatConfig::pairwise().with_tier(tier), Some(&pre));
            row(&format!("{} Ditto", tier.name()), p_ditto, ditto);
            row(&format!("{} HierGAT", tier.name()), p_hg, hg);
        }
    }
}

fn main() {
    banner("Table 3 — F1 across three LM sizes (Ditto vs HierGAT)");
    run_block(PAPER_CLEAN, false);
    println!("\n-- dirty variants --");
    run_block(PAPER_DIRTY, true);
}
