//! Table 10 — multi-view attribute-summarization combiners for HierGAT+:
//! View Average vs Shared Space Learning vs Weight Average (Eq. 4).

use hiergat::{HierGatConfig, ViewCombiner};
use hiergat_baselines::flatten_collective;
use hiergat_bench::*;
use hiergat_data::MagellanDataset;
use hiergat_lm::LmTier;

/// `(dataset, paper [ViewAverage, SharedSpace, WeightAverage])`.
const PAPER: &[(MagellanDataset, [f64; 3])] = &[
    (MagellanDataset::ItunesAmazon, [56.1, 55.6, 64.7]),
    (MagellanDataset::DblpAcm, [99.1, 99.0, 99.6]),
    (MagellanDataset::AmazonGoogle, [75.1, 74.4, 83.1]),
    (MagellanDataset::WalmartAmazon, [82.3, 81.0, 89.2]),
    (MagellanDataset::AbtBuy, [85.4, 81.8, 92.9]),
];

fn main() {
    banner("Table 10 — attribute-summarization combiners (HierGAT+)");
    let scale = bench_scale() * 0.3;
    let combiners = [
        ("View Average", ViewCombiner::ViewAverage),
        ("Shared Space", ViewCombiner::SharedSpace),
        ("Weight Average", ViewCombiner::WeightAverage),
    ];
    for &(kind, paper) in PAPER {
        let ds = kind.load_collective(scale);
        let flat = flatten_collective(&ds);
        let pre = pretrain_for(&flat, LmTier::MiniBase);
        let arity = collective_arity(&ds);
        println!("{}:", kind.short_name());
        for ((name, combiner), &p) in combiners.into_iter().zip(&paper) {
            let cfg = HierGatConfig { combiner, ..HierGatConfig::collective() };
            let f1 = run_hiergat_collective(&ds, cfg, arity, Some(&pre));
            row(name, p, f1);
        }
    }
}
