//! Shared harness for the benchmark targets that regenerate every table and
//! figure of the paper (see DESIGN.md §3 for the experiment index).
//!
//! Each `benches/*.rs` target is a `harness = false` binary that trains the
//! relevant models and prints `paper=<value> measured=<value>` rows; the
//! consolidated results live in EXPERIMENTS.md.

use hiergat::{train_collective, train_pairwise, HierGat, HierGatConfig};
use hiergat_baselines::{
    train_collective_model, train_pair_model, CollectiveErModel, DeepMatcher, DeepMatcherConfig,
    Ditto, DittoConfig, DmPlus, DmPlusConfig, Magellan, PairModel,
};
use hiergat_data::{CollectiveDataset, PairDataset};
use hiergat_lm::{corpus_from_entities, pretrain, LmTier, PretrainConfig};
use hiergat_nn::ParamStore;

/// Global size multiplier for benchmark datasets, from the
/// `HIERGAT_BENCH_SCALE` environment variable (default 1.0). Lower it to
/// smoke-test the whole suite quickly.
pub fn bench_scale() -> f64 {
    std::env::var("HIERGAT_BENCH_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0)
}

/// Training epochs for benchmark runs, from `HIERGAT_BENCH_EPOCHS`
/// (default 6; the paper uses 10 — see EXPERIMENTS.md).
pub fn bench_epochs() -> usize {
    std::env::var("HIERGAT_BENCH_EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(6)
}

/// Prints a table banner.
pub fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("  (bench scale {:.2}, {} epochs)", bench_scale(), bench_epochs());
    println!("================================================================");
}

/// Prints one `name: paper=… measured=…` row.
pub fn row(name: &str, paper: f64, measured: f64) {
    println!("  {name:<24} paper={paper:>6.1}  measured={measured:>6.1}");
}

/// Pre-trains a miniature LM on a pairwise dataset's training corpus.
pub fn pretrain_for(ds: &PairDataset, tier: LmTier) -> ParamStore {
    let entities: Vec<_> =
        ds.train.iter().flat_map(|p| [p.left.clone(), p.right.clone()]).collect();
    let corpus = corpus_from_entities(entities.iter());
    pretrain(tier.config(), &corpus, &PretrainConfig::default()).store
}

/// Pre-trains a miniature LM on a collective dataset's training corpus.
pub fn pretrain_for_collective(ds: &CollectiveDataset, tier: LmTier) -> ParamStore {
    let entities: Vec<_> = ds
        .train
        .iter()
        .flat_map(|ex| std::iter::once(ex.query.clone()).chain(ex.candidates.iter().cloned()))
        .collect();
    let corpus = corpus_from_entities(entities.iter());
    pretrain(tier.config(), &corpus, &PretrainConfig::default()).store
}

/// Trains + evaluates Magellan; returns test F1 (percent).
pub fn run_magellan(ds: &PairDataset) -> f64 {
    let (_, report) = Magellan::train(ds, 7);
    report.test_f1 * 100.0
}

/// Trains + evaluates DeepMatcher; returns test F1 (percent).
pub fn run_deepmatcher(ds: &PairDataset) -> f64 {
    let mut dm = DeepMatcher::new(
        DeepMatcherConfig { epochs: bench_epochs(), ..Default::default() },
        ds.arity().max(1),
    );
    train_pair_model(&mut dm, ds).test_f1 * 100.0
}

/// Trains + evaluates DM+ (HierMatcher-style); returns test F1 (percent).
pub fn run_dmplus(ds: &PairDataset) -> f64 {
    let mut dmp = DmPlus::new(
        DmPlusConfig { epochs: bench_epochs(), ..Default::default() },
        ds.arity().max(1),
    );
    train_pair_model(&mut dmp, ds).test_f1 * 100.0
}

/// Trains + evaluates Ditto with an optional pre-trained LM; returns
/// test F1 (percent).
pub fn run_ditto(ds: &PairDataset, tier: LmTier, pre: Option<&ParamStore>) -> f64 {
    let mut ditto =
        Ditto::new(DittoConfig { lm_tier: tier, epochs: bench_epochs(), ..Default::default() });
    if let Some(pre) = pre {
        ditto.load_pretrained(pre);
    }
    train_pair_model(&mut ditto, ds).test_f1 * 100.0
}

/// Trains + evaluates pairwise HierGAT; returns test F1 (percent).
pub fn run_hiergat(ds: &PairDataset, cfg: HierGatConfig, pre: Option<&ParamStore>) -> f64 {
    let mut hg = HierGat::new(cfg.with_epochs(bench_epochs()), ds.arity().max(1));
    if let Some(pre) = pre {
        hg.load_pretrained(pre);
    }
    train_pairwise(&mut hg, ds).test_f1 * 100.0
}

/// Trains + evaluates HierGAT(+) on a collective dataset; returns
/// test F1 (percent).
pub fn run_hiergat_collective(
    ds: &CollectiveDataset,
    cfg: HierGatConfig,
    arity: usize,
    pre: Option<&ParamStore>,
) -> f64 {
    let mut hg = HierGat::new(cfg.with_epochs(bench_epochs()), arity.max(1));
    if let Some(pre) = pre {
        hg.load_pretrained(pre);
    }
    train_collective(&mut hg, ds).test_f1 * 100.0
}

/// Trains + evaluates a collective baseline model; returns test F1
/// (percent).
pub fn run_collective_baseline<M: CollectiveErModel + Sync>(
    model: &mut M,
    ds: &CollectiveDataset,
) -> f64 {
    train_collective_model(model, ds).test_f1 * 100.0
}

/// Trains + evaluates any pairwise baseline; returns test F1 (percent).
pub fn run_pair_baseline<M: PairModel + Sync>(model: &mut M, ds: &PairDataset) -> f64 {
    train_pair_model(model, ds).test_f1 * 100.0
}

/// Arity of a collective dataset (from the first query).
pub fn collective_arity(ds: &CollectiveDataset) -> usize {
    ds.train.first().or(ds.valid.first()).or(ds.test.first()).map_or(1, |ex| ex.query.arity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::MagellanDataset;

    #[test]
    fn env_defaults() {
        // Without env overrides (test env), defaults apply.
        assert!(bench_scale() > 0.0);
        assert!(bench_epochs() > 0);
    }

    #[test]
    fn magellan_runner_smoke() {
        let ds = MagellanDataset::FodorsZagats.load(0.3);
        let f1 = run_magellan(&ds);
        assert!((0.0..=100.0).contains(&f1));
    }

    #[test]
    fn collective_arity_reads_query() {
        let ds = MagellanDataset::AmazonGoogle.load_collective(0.2);
        assert_eq!(collective_arity(&ds), 3);
    }
}
