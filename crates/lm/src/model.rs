//! The miniature language model: hashed token embeddings + Transformer
//! encoder with `[CLS]`/`[SEP]` serialization.

use crate::config::LmConfig;
use hiergat_nn::{ParamId, ParamStore, Tape, TransformerEncoder, Var};
use hiergat_tensor::Tensor;
use hiergat_text::{tokenize, HashVocab, Special};
use rand::Rng;

/// A miniature BERT-style encoder.
///
/// All parameters are registered under the `lm.` prefix so a fine-tuning
/// model can load a pre-trained checkpoint with
/// [`ParamStore::load_matching`].
pub struct MiniLm {
    config: LmConfig,
    vocab: HashVocab,
    tok_emb: ParamId,
    encoder: TransformerEncoder,
}

impl MiniLm {
    /// Registers the LM parameters in `ps`.
    pub fn new(ps: &mut ParamStore, config: LmConfig, rng: &mut impl Rng) -> Self {
        let vocab = HashVocab::new(config.vocab_size);
        // From-scratch miniature models need a larger embedding scale than
        // the 0.02 BERT fine-tuning convention, or raw-embedding comparison
        // features start out negligible relative to LayerNormed activations.
        let emb_std = 1.0 / (config.d_model as f32).sqrt();
        let tok_emb = ps.add(
            "lm.tok_emb",
            Tensor::rand_normal(config.vocab_size, config.d_model, 0.0, emb_std, rng),
        );
        let encoder = TransformerEncoder::new(
            ps,
            "lm.encoder",
            config.n_layers,
            config.d_model,
            config.heads,
            config.d_ff,
            config.max_len,
            0.1,
            rng,
        );
        Self { config, vocab, tok_emb, encoder }
    }

    /// Architecture.
    pub fn config(&self) -> &LmConfig {
        &self.config
    }

    /// The hashing vocabulary.
    pub fn vocab(&self) -> &HashVocab {
        &self.vocab
    }

    /// The token-embedding parameter.
    pub fn token_embedding(&self) -> ParamId {
        self.tok_emb
    }

    /// Truncates `ids` to the maximum length the encoder accepts.
    fn clip<'a>(&self, ids: &'a [usize]) -> &'a [usize] {
        &ids[..ids.len().min(self.config.max_len)]
    }

    /// Converts a token string slice to vocabulary ids.
    pub fn ids_of(&self, tokens: &[String]) -> Vec<usize> {
        self.vocab.ids(tokens)
    }

    /// `[CLS] tokens...` id sequence.
    pub fn cls_sequence(&self, tokens: &[String]) -> Vec<usize> {
        let mut ids = vec![self.vocab.special(Special::Cls)];
        ids.extend(self.vocab.ids(tokens));
        ids
    }

    /// `[CLS] a [SEP] b [SEP]` id sequence (the attribute-comparison
    /// serialization of §5.2.1 and Ditto's pair serialization).
    pub fn pair_sequence(&self, a: &[String], b: &[String]) -> Vec<usize> {
        let sep = self.vocab.special(Special::Sep);
        let mut ids = vec![self.vocab.special(Special::Cls)];
        ids.extend(self.vocab.ids(a));
        ids.push(sep);
        ids.extend(self.vocab.ids(b));
        ids.push(sep);
        ids
    }

    /// Tokenizes raw text and produces a `[CLS]`-prefixed id sequence.
    pub fn cls_sequence_of_text(&self, text: &str) -> Vec<usize> {
        self.cls_sequence(&tokenize(text))
    }

    /// Looks up (trainable) embeddings for an id sequence: `n x d`.
    pub fn embed_ids(&self, t: &mut Tape, ps: &ParamStore, ids: &[usize]) -> Var {
        let ids = self.clip(ids);
        let table = t.param(ps, self.tok_emb);
        t.gather_rows(table, ids)
    }

    /// Full encoding: embeddings + positional encoding + Transformer stack.
    /// Returns the `n x d` contextual embeddings.
    pub fn encode_ids(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        ids: &[usize],
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let ids = self.clip(ids);
        let x = self.embed_ids(t, ps, ids);
        self.encoder.forward(t, ps, x, train, rng)
    }

    /// Encoding that also captures per-layer, per-head attention maps
    /// (paper Figure 9 visualization).
    pub fn encode_ids_with_attn(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        ids: &[usize],
        train: bool,
        rng: &mut impl Rng,
        attn_out: &mut Vec<Tensor>,
    ) -> Var {
        let ids = self.clip(ids);
        let x = self.embed_ids(t, ps, ids);
        self.encoder.forward_with_attn(t, ps, x, train, rng, attn_out)
    }

    /// Encodes a pre-built `n x d` embedding sequence (positional encoding +
    /// Transformer stack). HierGAT feeds WpC embeddings and attribute
    /// embeddings through the same pre-trained encoder this way (§5.1-§5.2).
    pub fn encode_embedded(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let n = t.value(x).rows();
        let x = if n > self.config.max_len { t.slice_rows(x, 0, self.config.max_len) } else { x };
        self.encoder.forward(t, ps, x, train, rng)
    }

    /// Like [`Self::encode_embedded`], but captures per-layer, per-head
    /// attention maps (used for the Figure 9 visualization).
    pub fn encode_embedded_with_attn(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        train: bool,
        rng: &mut impl Rng,
        attn_out: &mut Vec<Tensor>,
    ) -> Var {
        let n = t.value(x).rows();
        let x = if n > self.config.max_len { t.slice_rows(x, 0, self.config.max_len) } else { x };
        self.encoder.forward_with_attn(t, ps, x, train, rng, attn_out)
    }

    /// The (trainable) embedding row of a special token (`1 x d`).
    pub fn special_embedding(&self, t: &mut Tape, ps: &ParamStore, s: Special) -> Var {
        let table = t.param(ps, self.tok_emb);
        t.gather_rows(table, &[self.vocab.special(s)])
    }

    /// Encodes and returns only the `[CLS]` row (`1 x d`) — the sequence
    /// summary used as attribute embedding (§5.1.1).
    pub fn encode_cls(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        ids: &[usize],
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let h = self.encode_ids(t, ps, ids, train, rng);
        t.row(h, 0)
    }

    /// Analyzer cost budget for encoding a `seq_len`-token sequence: records
    /// the forward pass on a shape-only tape (no kernels run) and returns the
    /// per-op FLOP and peak-memory estimates evaluated at `split` threads.
    /// This is what lets callers pick a tier that fits their time budget
    /// before paying for a real forward.
    pub fn encoding_cost(
        &self,
        ps: &ParamStore,
        seq_len: usize,
        split: usize,
    ) -> hiergat_nn::CostReport {
        let mut t = Tape::shape_only();
        let ids = vec![0usize; seq_len.clamp(1, self.config.max_len)];
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let _ = self.encode_ids(&mut t, ps, &ids, false, &mut rng);
        hiergat_nn::cost_analysis(&t, split)
    }

    /// Runs the [`hiergat_nn::lint_graph`] rule engine over a training-mode
    /// encoding of a `seq_len`-token sequence. The encoder has no natural
    /// scalar loss, so the mean of the contextual embeddings serves as a
    /// pseudo-loss that makes every encoder op gradient-reachable.
    pub fn lint_encoding(&self, ps: &ParamStore, seq_len: usize) -> hiergat_nn::LintReport {
        let mut t = Tape::shape_only();
        let ids = vec![0usize; seq_len.clamp(1, self.config.max_len)];
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let h = self.encode_ids(&mut t, ps, &ids, true, &mut rng);
        let loss = t.mean_all(h);
        hiergat_nn::lint_graph(&t, loss, ps, &hiergat_nn::LintConfig::training())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LmTier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn sequences_have_special_markers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let seq = lm.cls_sequence(&toks("hello world"));
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0], Special::Cls as usize);
        let pair = lm.pair_sequence(&toks("a b"), &toks("c"));
        assert_eq!(pair.len(), 6);
        assert_eq!(pair[3], Special::Sep as usize);
        assert_eq!(pair[5], Special::Sep as usize);
    }

    #[test]
    fn lint_encoding_passes_at_deny_warn() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ps = ParamStore::new();
        let lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let report = lm.lint_encoding(&ps, 12);
        assert!(
            report.is_clean_at(hiergat_nn::Severity::Warn),
            "encoder graph must lint clean:\n{report}"
        );
    }

    #[test]
    fn encode_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let mut t = Tape::new();
        let ids = lm.cls_sequence(&toks("adobe photoshop elements"));
        let h = lm.encode_ids(&mut t, &ps, &ids, false, &mut rng);
        assert_eq!(t.value(h).shape(), (4, 32));
        let mut t2 = Tape::new();
        let cls = lm.encode_cls(&mut t2, &ps, &ids, false, &mut rng);
        assert_eq!(t2.value(cls).shape(), (1, 32));
    }

    #[test]
    fn overlong_sequences_are_clipped() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let long: Vec<String> = (0..500).map(|i| format!("tok{i}")).collect();
        let ids = lm.cls_sequence(&long);
        let mut t = Tape::new();
        let h = lm.encode_ids(&mut t, &ps, &ids, false, &mut rng);
        assert_eq!(t.value(h).rows(), lm.config().max_len);
    }

    #[test]
    fn same_word_gets_different_contextual_embeddings() {
        // "spark" in two different contexts must encode differently —
        // the polysemy property of §4 the contextual LM provides.
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let ids_a = lm.cls_sequence(&toks("spark big data cluster"));
        let ids_b = lm.cls_sequence(&toks("spark video editor"));
        let mut t = Tape::new();
        let ha = lm.encode_ids(&mut t, &ps, &ids_a, false, &mut rng);
        let hb = lm.encode_ids(&mut t, &ps, &ids_b, false, &mut rng);
        // Row 1 is "spark" in both sequences.
        let ea = t.value(ha).slice_rows(1, 1);
        let eb = t.value(hb).slice_rows(1, 1);
        assert!(!ea.allclose(&eb, 1e-4), "contextual embeddings must differ");
    }

    #[test]
    fn encoding_cost_grows_with_sequence_length() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let short = lm.encoding_cost(&ps, 4, 1);
        let long = lm.encoding_cost(&ps, 64, 1);
        assert!(long.total_flops > short.total_flops);
        assert!(long.peak_bytes > short.peak_bytes);
        // Attention scoring (matmul_nt) must show up in the per-op budget.
        assert!(long.per_op.iter().any(|o| o.op_name == "matmul_nt" && o.flops > 0));
        // Clipping: past max_len the budget saturates.
        let over = lm.encoding_cost(&ps, 10_000, 1);
        let max = lm.encoding_cost(&ps, lm.config().max_len, 1);
        assert_eq!(over.total_flops, max.total_flops);
    }

    #[test]
    fn attention_capture_has_layer_head_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamStore::new();
        let cfg = LmTier::MiniDistil.config();
        let lm = MiniLm::new(&mut ps, cfg, &mut rng);
        let ids = lm.cls_sequence(&toks("x y z"));
        let mut t = Tape::new();
        let mut attn = Vec::new();
        let _ = lm.encode_ids_with_attn(&mut t, &ps, &ids, false, &mut rng, &mut attn);
        assert_eq!(attn.len(), cfg.n_layers * cfg.heads);
    }
}
