//! Masked-token pre-training.
//!
//! The paper fine-tunes LMs that were pre-trained on large corpora. Our
//! miniature LMs are pre-trained from scratch on a synthetic corpus with a
//! BERT-style masked-token objective, preserving the
//! pre-train-then-fine-tune pipeline.

use crate::config::LmConfig;
use crate::model::MiniLm;
use hiergat_data::Entity;
use hiergat_nn::{Adam, Linear, Optimizer, ParamStore, Tape};
use hiergat_text::{tokenize, Special};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pre-training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct PretrainConfig {
    /// Number of masked-token passes over the corpus.
    pub epochs: usize,
    /// Fraction of tokens masked per sentence.
    pub mask_rate: f64,
    /// Number of sentence-pair discrimination passes (see below).
    ///
    /// Full-size BERT/RoBERTa arrive with deep cross-segment comparison
    /// circuits that serialized-pair matchers like Ditto (and HierGAT's
    /// attribute comparison layer) rely on. A from-scratch miniature LM has
    /// none, so we pre-train them explicitly: the model sees
    /// `[CLS] s [SEP] s' [SEP]` where `s'` is either a token-noised copy of
    /// `s` (positive) or a different sentence (negative), and learns to
    /// classify from `[CLS]`.
    pub pair_epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self { epochs: 2, mask_rate: 0.15, pair_epochs: 3, lr: 1e-3, seed: 0x9e7a }
    }
}

/// Builds a pre-training corpus from entity attribute values.
pub fn corpus_from_entities<'a>(entities: impl Iterator<Item = &'a Entity>) -> Vec<Vec<String>> {
    let mut corpus = Vec::new();
    for e in entities {
        for (_, v) in &e.attrs {
            let toks = tokenize(v);
            if toks.len() >= 2 {
                corpus.push(toks);
            }
        }
    }
    corpus
}

/// Result of pre-training: the parameter store holding `lm.*` weights and
/// the final average loss (for diagnostics).
pub struct Pretrained {
    /// Parameters including the trained `lm.*` tensors.
    pub store: ParamStore,
    /// Mean masked-token loss over the last epoch.
    pub final_loss: f32,
}

/// Creates a token-noised copy of a sentence (drops and swaps), simulating
/// the cross-source formatting differences of a matching pair.
fn noisy_copy(sent: &[String], rng: &mut StdRng) -> Vec<String> {
    let mut out: Vec<String> = sent.iter().filter(|_| !rng.gen_bool(0.25)).cloned().collect();
    if out.is_empty() {
        out.push(sent[0].clone());
    }
    for i in 0..out.len().saturating_sub(1) {
        if rng.gen_bool(0.2) {
            out.swap(i, i + 1);
        }
    }
    out
}

/// Pre-trains a fresh LM of the given architecture on `corpus`.
pub fn pretrain(config: LmConfig, corpus: &[Vec<String>], pcfg: &PretrainConfig) -> Pretrained {
    let mut rng = StdRng::seed_from_u64(pcfg.seed);
    let mut ps = ParamStore::new();
    let lm = MiniLm::new(&mut ps, config, &mut rng);
    // Output head predicting the original id at each masked position.
    let head =
        Linear::new(&mut ps, "pretrain.head", config.d_model, config.vocab_size, true, &mut rng);
    // Sentence-pair discrimination head (same/different from [CLS]).
    let pair_head = Linear::new(&mut ps, "pretrain.pair_head", config.d_model, 2, true, &mut rng);
    let mut opt = Adam::new(pcfg.lr);
    let mask_id = Special::Mask as usize;

    let mut final_loss = 0.0f32;
    for epoch in 0..pcfg.epochs {
        let mut epoch_loss = 0.0f32;
        let mut n_batches = 0usize;
        for sent in corpus {
            let ids = lm.cls_sequence(sent);
            if ids.len() < 3 {
                continue;
            }
            // Choose masked positions (never the CLS at position 0).
            let mut masked = ids.clone();
            let mut targets = Vec::new();
            let mut positions = Vec::new();
            for (pos, &orig) in ids.iter().enumerate().skip(1) {
                if rng.gen_bool(pcfg.mask_rate) {
                    masked[pos] = mask_id;
                    positions.push(pos);
                    targets.push(orig);
                }
            }
            if positions.is_empty() {
                // Force one mask so every sentence contributes.
                let pos = rng.gen_range(1..ids.len());
                masked[pos] = mask_id;
                positions.push(pos);
                targets.push(ids[pos]);
            }
            let mut t = Tape::new();
            let h = lm.encode_ids(&mut t, &ps, &masked, true, &mut rng);
            // Select only masked rows before the expensive vocab projection.
            let n_rows = t.value(h).rows();
            let mut rows = Vec::new();
            let mut kept_targets = Vec::new();
            for (&p, &target) in positions.iter().zip(&targets) {
                if p < n_rows {
                    rows.push(t.row(h, p));
                    kept_targets.push(target);
                }
            }
            if rows.is_empty() {
                continue;
            }
            let picked = t.concat_rows(&rows);
            let logits = head.forward(&mut t, &ps, picked);
            let loss = t.cross_entropy_logits(logits, &kept_targets);
            epoch_loss += t.value(loss).item();
            n_batches += 1;
            t.backward(loss, &mut ps);
            ps.clip_grad_norm(5.0);
            opt.step(&mut ps);
            ps.zero_grad();
        }
        if n_batches > 0 && epoch == pcfg.epochs - 1 {
            final_loss = epoch_loss / n_batches as f32;
        }
    }

    // ---- Sentence-pair discrimination phase -----------------------------
    if corpus.len() >= 2 {
        for _ in 0..pcfg.pair_epochs {
            for si in 0..corpus.len() {
                let s = &corpus[si];
                let positive = rng.gen_bool(0.5);
                let other = if positive {
                    noisy_copy(s, &mut rng)
                } else {
                    // A different sentence; retry once to avoid self-pairing.
                    let mut oi = rng.gen_range(0..corpus.len());
                    if oi == si {
                        oi = (oi + 1) % corpus.len();
                    }
                    corpus[oi].clone()
                };
                let ids = lm.pair_sequence(s, &other);
                let mut t = Tape::new();
                let cls = lm.encode_cls(&mut t, &ps, &ids, true, &mut rng);
                let logits = pair_head.forward(&mut t, &ps, cls);
                let loss = t.cross_entropy_logits(logits, &[usize::from(positive)]);
                t.backward(loss, &mut ps);
                ps.clip_grad_norm(5.0);
                opt.step(&mut ps);
                ps.zero_grad();
            }
        }
    }
    Pretrained { store: ps, final_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LmTier;

    fn tiny_corpus() -> Vec<Vec<String>> {
        let sentences = [
            "adobe photoshop graphics editor",
            "adobe illustrator graphics design",
            "apache spark big data cluster",
            "apache hadoop big data framework",
            "canon eos digital camera body",
            "nikon digital camera lens kit",
        ];
        sentences.iter().map(|s| s.split_whitespace().map(str::to_string).collect()).collect()
    }

    #[test]
    fn pretraining_reduces_loss() {
        let corpus = tiny_corpus();
        let short = pretrain(
            LmTier::MiniDistil.config(),
            &corpus,
            &PretrainConfig { epochs: 1, ..Default::default() },
        );
        let long = pretrain(
            LmTier::MiniDistil.config(),
            &corpus,
            &PretrainConfig { epochs: 10, ..Default::default() },
        );
        assert!(
            long.final_loss < short.final_loss,
            "more pre-training must reduce loss: {} vs {}",
            long.final_loss,
            short.final_loss
        );
    }

    #[test]
    fn pretrained_weights_load_into_fresh_model() {
        let corpus = tiny_corpus();
        let pre = pretrain(LmTier::MiniDistil.config(), &corpus, &PretrainConfig::default());
        // Build a fine-tuning model with extra task parameters.
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let _lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let copied = ps.load_matching(&pre.store);
        // All lm.* parameters must be copied (pretrain.head is extra).
        let lm_params = pre.store.iter().filter(|(_, n, _)| n.starts_with("lm.")).count();
        assert_eq!(copied, lm_params);
    }

    #[test]
    fn corpus_extraction_skips_short_values() {
        let e = Entity::new(
            "x",
            vec![
                ("title".into(), "canon eos camera".into()),
                ("price".into(), "49.99".into()), // single token: skipped
            ],
        );
        let corpus = corpus_from_entities(std::iter::once(&e));
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus[0], vec!["canon", "eos", "camera"]);
    }

    #[test]
    fn pretraining_is_deterministic() {
        let corpus = tiny_corpus();
        let cfg = PretrainConfig { epochs: 1, ..Default::default() };
        let a = pretrain(LmTier::MiniDistil.config(), &corpus, &cfg);
        let b = pretrain(LmTier::MiniDistil.config(), &corpus, &cfg);
        assert_eq!(a.final_loss, b.final_loss);
    }
}
