//! Miniature pre-trained language models.
//!
//! Stand-ins for the DistilBERT / RoBERTa / RoBERTa-Large checkpoints the
//! paper fine-tunes (§6.1): three size tiers of a hash-vocabulary
//! Transformer encoder, pre-trained from scratch with a masked-token
//! objective on a synthetic corpus, then loaded into ER models via
//! `ParamStore::load_matching` for fine-tuning.

mod config;
mod model;
mod pretrain;

pub use config::{LmConfig, LmTier};
pub use model::MiniLm;
pub use pretrain::{corpus_from_entities, pretrain, PretrainConfig, Pretrained};
