//! Language-model size tiers.
//!
//! The paper evaluates HierGAT and Ditto across three pre-trained LM sizes
//! (DistilBERT, RoBERTa, RoBERTa-Large; Tables 3 and 8). The reproduction
//! mirrors the three-tier structure with miniature Transformers that can be
//! pre-trained from scratch on CPU in seconds.

use serde::{Deserialize, Serialize};

/// The three model-size tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LmTier {
    /// Stand-in for DistilBERT (smallest).
    MiniDistil,
    /// Stand-in for RoBERTa (base).
    MiniBase,
    /// Stand-in for RoBERTa-Large (largest).
    MiniLarge,
}

/// Architecture hyperparameters of a miniature LM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LmConfig {
    /// Hidden width (the paper's models use 768/1024; ours are miniature).
    pub d_model: usize,
    /// Number of encoder blocks.
    pub n_layers: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Hash-vocabulary size (including special tokens).
    pub vocab_size: usize,
    /// Maximum sequence length.
    pub max_len: usize,
}

impl LmTier {
    /// All tiers, smallest first (paper table order: DBERT, RoBERTa,
    /// LRoBERTa).
    pub fn all() -> [Self; 3] {
        [Self::MiniDistil, Self::MiniBase, Self::MiniLarge]
    }

    /// Display name aligned with the paper's column headers.
    pub fn name(&self) -> &'static str {
        match self {
            Self::MiniDistil => "DBERT",
            Self::MiniBase => "RoBERTa",
            Self::MiniLarge => "LRoBERTa",
        }
    }

    /// The tier's architecture.
    pub fn config(&self) -> LmConfig {
        match self {
            Self::MiniDistil => LmConfig {
                d_model: 32,
                n_layers: 2,
                heads: 2,
                d_ff: 64,
                vocab_size: 2048,
                max_len: 96,
            },
            Self::MiniBase => LmConfig {
                d_model: 48,
                n_layers: 3,
                heads: 4,
                d_ff: 96,
                vocab_size: 2048,
                max_len: 96,
            },
            Self::MiniLarge => LmConfig {
                d_model: 64,
                n_layers: 4,
                heads: 4,
                d_ff: 128,
                vocab_size: 2048,
                max_len: 96,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_grow_monotonically() {
        let [d, b, l] = LmTier::all();
        assert!(d.config().d_model < b.config().d_model);
        assert!(b.config().d_model < l.config().d_model);
        assert!(d.config().n_layers < l.config().n_layers);
    }

    #[test]
    fn heads_divide_width() {
        for tier in LmTier::all() {
            let c = tier.config();
            assert_eq!(c.d_model % c.heads, 0, "{}", tier.name());
        }
    }

    #[test]
    fn names_match_paper_headers() {
        assert_eq!(LmTier::MiniDistil.name(), "DBERT");
        assert_eq!(LmTier::MiniBase.name(), "RoBERTa");
        assert_eq!(LmTier::MiniLarge.name(), "LRoBERTa");
    }
}
