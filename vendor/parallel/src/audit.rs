//! Write-disjointness audit for the pool's splitting entry points.
//!
//! The pool's safety story rests on one claim: every [`par_chunks_mut`] /
//! [`par_ranges`] call splits its output into task ranges that are
//! **pairwise disjoint** and **cover the output exactly** — that is what
//! justifies the `SendPtr` + `from_raw_parts_mut` aliasing in
//! `par_chunks_mut` and the bitwise-determinism contract in the module
//! docs. This module makes the claim checkable instead of assumed: inside
//! a [`record_claims`] session every splitting call registers the
//! half-open range each of its tasks writes, and [`verify`] statically
//! asserts the disjoint-exact-cover property for every recorded call.
//!
//! Recording is off unless a session is active, so the instrumentation
//! costs one relaxed atomic load per splitting call in normal operation.
//!
//! [`par_chunks_mut`]: crate::par_chunks_mut
//! [`par_ranges`]: crate::par_ranges

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One task's claimed output range within a single splitting call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// Identifier of the splitting call (`par_chunks_mut`/`par_ranges`
    /// invocation) this claim belongs to; unique within a session.
    pub call: usize,
    /// First claimed element index.
    pub start: usize,
    /// Number of claimed elements.
    pub len: usize,
    /// Total length of the output the call was splitting.
    pub total: usize,
}

/// Aggregate statistics from a successful [`verify`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Distinct splitting calls verified.
    pub calls: usize,
    /// Total task claims across those calls.
    pub tasks: usize,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static NEXT_CALL: AtomicUsize = AtomicUsize::new(0);
static CLAIMS: Mutex<Vec<Claim>> = Mutex::new(Vec::new());
/// Serializes sessions: two overlapping sessions would drain each other's
/// claims.
static SESSION: Mutex<()> = Mutex::new(());

/// Allocates a call id when a session is active; `None` (free) otherwise.
/// Called by the splitting entry points once per invocation.
pub(crate) fn next_call_id() -> Option<usize> {
    if ACTIVE.load(Ordering::Relaxed) {
        Some(NEXT_CALL.fetch_add(1, Ordering::Relaxed))
    } else {
        None
    }
}

/// Registers one task's claimed range (called from inside task closures,
/// possibly on worker threads).
pub(crate) fn record(call: usize, start: usize, len: usize, total: usize) {
    CLAIMS.lock().expect("audit claims lock").push(Claim { call, start, len, total });
}

/// Runs `f` with claim recording enabled and returns its result together
/// with every claim recorded while it ran. Sessions are serialized
/// process-wide; recording is restored to off even if `f` panics.
pub fn record_claims<R>(f: impl FnOnce() -> R) -> (R, Vec<Claim>) {
    let _session = SESSION.lock().expect("audit session lock");
    struct Off;
    impl Drop for Off {
        fn drop(&mut self) {
            ACTIVE.store(false, Ordering::Relaxed);
        }
    }
    CLAIMS.lock().expect("audit claims lock").clear();
    ACTIVE.store(true, Ordering::Relaxed);
    let _off = Off;
    let result = f();
    ACTIVE.store(false, Ordering::Relaxed);
    let claims = std::mem::take(&mut *CLAIMS.lock().expect("audit claims lock"));
    (result, claims)
}

/// Statically checks that every recorded call's claims are pairwise
/// disjoint and cover `0..total` exactly (no gap, no overlap, no
/// out-of-bounds claim). Returns aggregate stats on success and a
/// human-readable description of the first violation otherwise.
pub fn verify(claims: &[Claim]) -> Result<AuditStats, String> {
    let mut by_call: Vec<(usize, Vec<&Claim>)> = Vec::new();
    for c in claims {
        match by_call.iter_mut().find(|(id, _)| *id == c.call) {
            Some((_, list)) => list.push(c),
            None => by_call.push((c.call, vec![c])),
        }
    }
    let mut tasks = 0;
    for (call, mut list) in by_call.iter().map(|(id, l)| (*id, l.clone())) {
        let total = list[0].total;
        if let Some(bad) = list.iter().find(|c| c.total != total) {
            return Err(format!(
                "call #{call}: tasks disagree on the output length ({total} vs {})",
                bad.total
            ));
        }
        list.sort_by_key(|c| c.start);
        let mut covered = 0usize;
        for c in &list {
            if c.len == 0 {
                return Err(format!("call #{call}: empty claim at {}", c.start));
            }
            if c.start > covered {
                return Err(format!(
                    "call #{call}: gap — elements [{covered}, {}) claimed by no task",
                    c.start
                ));
            }
            if c.start < covered {
                return Err(format!(
                    "call #{call}: overlap — element {} claimed by two tasks",
                    c.start
                ));
            }
            covered = c.start + c.len;
        }
        if covered != total {
            return Err(format!(
                "call #{call}: claims cover [0, {covered}) but the output has {total} elements"
            ));
        }
        tasks += list.len();
    }
    Ok(AuditStats { calls: by_call.len(), tasks })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(call: usize, start: usize, len: usize, total: usize) -> Claim {
        Claim { call, start, len, total }
    }

    #[test]
    fn exact_cover_verifies() {
        let claims =
            [claim(0, 0, 4, 10), claim(0, 4, 4, 10), claim(0, 8, 2, 10), claim(1, 0, 3, 3)];
        let stats = verify(&claims).expect("exact cover must verify");
        assert_eq!(stats, AuditStats { calls: 2, tasks: 4 });
    }

    #[test]
    fn gap_is_detected() {
        let claims = [claim(0, 0, 4, 10), claim(0, 6, 4, 10)];
        let err = verify(&claims).expect_err("gap must fail");
        assert!(err.contains("gap"), "{err}");
    }

    #[test]
    fn overlap_is_detected() {
        let claims = [claim(0, 0, 6, 10), claim(0, 4, 6, 10)];
        let err = verify(&claims).expect_err("overlap must fail");
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn short_cover_is_detected() {
        let claims = [claim(0, 0, 4, 10)];
        let err = verify(&claims).expect_err("short cover must fail");
        assert!(err.contains("10 elements"), "{err}");
    }

    #[test]
    fn recording_captures_par_chunks_mut_geometry() {
        let mut data = vec![0u32; 100];
        let ((), claims) = record_claims(|| {
            crate::par_chunks_mut(&mut data, 17, |ci, chunk| {
                for (o, v) in chunk.iter_mut().enumerate() {
                    *v = (ci * 17 + o) as u32;
                }
            });
        });
        assert_eq!(claims.iter().map(|c| c.len).sum::<usize>(), 100);
        let stats = verify(&claims).expect("pool geometry must verify");
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.tasks, 100usize.div_ceil(17));
        // Results are unaffected by the instrumentation.
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn recording_captures_par_ranges_including_serial_path() {
        let ((), claims) = record_claims(|| {
            crate::par_ranges(50, 1, |_, _| {});
            crate::par_ranges(50, 4, |_, _| {});
        });
        let stats = verify(&claims).expect("par_ranges geometry must verify");
        assert_eq!(stats.calls, 2);
        assert!(stats.tasks >= 5, "serial call contributes one claim, split call several");
    }

    #[test]
    fn recording_is_off_outside_sessions() {
        let mut data = vec![0u32; 64];
        crate::par_chunks_mut(&mut data, 8, |_, chunk| chunk.fill(1));
        let ((), claims) = record_claims(|| {});
        assert!(claims.is_empty(), "claims recorded outside a session leaked in");
    }
}
