//! Offline stand-in for a rayon-style data-parallel runtime.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal work-sharing thread pool with a rayon-like surface:
//! [`run`] (indexed task fan-out), [`par_chunks_mut`] (disjoint mutable
//! chunk processing), [`par_ranges`] (contiguous index ranges), and
//! [`par_join`] (two-way task parallelism).
//!
//! # Pool sizing
//!
//! A single global pool is created lazily on first use. Its size comes from
//! the `HIERGAT_THREADS` environment variable; unset, `0`, or unparsable
//! values fall back to [`std::thread::available_parallelism`]. A size of 1
//! spawns no worker threads at all — every entry point then degrades to a
//! plain inline loop with zero synchronization overhead.
//!
//! # Work sharing
//!
//! The calling thread always participates: publishing a job never blocks
//! the caller on a queue, it races the workers for task indices via an
//! atomic cursor. If the pool is already busy (nested parallelism, or two
//! threads issuing jobs at once) the late caller simply runs its own tasks
//! inline — no deadlock, no queueing, and no change in results.
//!
//! # Determinism
//!
//! The pool assigns *which* thread runs a task nondeterministically, but
//! callers are expected to split work into tasks whose outputs are disjoint
//! and whose per-task computation is independent of the thread count (the
//! tensor kernels split at row granularity and never divide a single
//! reduction across tasks). Under that discipline results are bitwise
//! identical run-to-run and across pool sizes. [`with_threads`] lets tests
//! force a specific split width on the current thread regardless of the
//! pool size, so the equivalence can be asserted for widths {1, 2, 8} in
//! one process.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

pub mod audit;

/// One published fan-out: an erased task closure plus claim/completion
/// bookkeeping. The closure pointer borrows the stack of the thread inside
/// [`run`]; soundness relies on `run` not returning until `remaining == 0`.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    total: usize,
    remaining: Mutex<usize>,
    done: Condvar,
}

// SAFETY: `task` is only dereferenced between job publication and the final
// `remaining` decrement, and `run` keeps the pointee alive (and the borrow
// exclusive to the job) for that whole window before returning.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and executes task indices until the cursor is exhausted.
    fn execute(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                break;
            }
            // SAFETY: see the `Send`/`Sync` justification above.
            let task = unsafe { &*self.task };
            task(i);
            let mut remaining = self.remaining.lock().expect("pool lock");
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every claimed task has finished.
    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("pool lock");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("pool lock");
        }
    }
}

/// State shared between the publishing side and the workers.
#[derive(Default)]
struct Shared {
    slot: Mutex<Slot>,
    work: Condvar,
}

#[derive(Default)]
struct Slot {
    job: Option<Arc<Job>>,
    seq: u64,
}

struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn worker(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("pool lock");
            loop {
                if slot.seq != seen {
                    seen = slot.seq;
                    if let Some(job) = &slot.job {
                        break Arc::clone(job);
                    }
                }
                slot = shared.work.wait(slot).expect("pool lock");
            }
        };
        job.execute();
    }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let n = configured_threads();
        let shared = Arc::new(Shared::default());
        for _ in 1..n {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name("hiergat-par".into())
                .spawn(move || worker(&s))
                .expect("spawn pool worker");
        }
        Pool { shared, workers: n - 1 }
    })
}

/// Thread count requested by the environment: `HIERGAT_THREADS`, falling
/// back to the machine's available parallelism when unset, `0`, or
/// unparsable. Pure read — does not initialize the pool.
pub fn configured_threads() -> usize {
    let fallback = || thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    match std::env::var("HIERGAT_THREADS") {
        Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(fallback),
        Err(_) => fallback(),
    }
}

/// Effective pool width (worker threads + the calling thread), at least 1.
/// First call initializes the global pool.
pub fn threads() -> usize {
    pool().workers + 1
}

thread_local! {
    static SPLIT_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The split width callers should use when dividing work into tasks: the
/// [`with_threads`] override if one is active on this thread, else
/// [`threads`].
pub fn current_split() -> usize {
    SPLIT_OVERRIDE.with(Cell::get).unwrap_or_else(threads)
}

/// Runs `f` with [`current_split`] forced to `n` on this thread (restored
/// on exit, including on panic). The pool itself is not resized: a split of
/// 8 over a 2-thread pool still produces 8 tasks, they just share fewer
/// threads — results are unaffected because task geometry, not scheduling,
/// determines them.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SPLIT_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SPLIT_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Executes `f(0), f(1), ..., f(tasks - 1)`, sharing the indices between
/// the calling thread and the pool workers. Falls back to an inline serial
/// loop when the pool has no workers, `tasks <= 1`, or the pool is already
/// running another job (nested parallelism).
pub fn run(tasks: usize, f: impl Fn(usize) + Sync) {
    if tasks == 0 {
        return;
    }
    let p = pool();
    if tasks == 1 || p.workers == 0 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    // SAFETY: erases the closure's stack lifetime to `'static` so it can sit
    // in the shared slot. `run` does not return until `job.wait()` has seen
    // `remaining == 0`, i.e. after the last dereference of this pointer.
    let task: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute(&f as *const (dyn Fn(usize) + Sync + '_)) };
    let job = Arc::new(Job {
        task,
        next: AtomicUsize::new(0),
        total: tasks,
        remaining: Mutex::new(tasks),
        done: Condvar::new(),
    });
    {
        let mut slot = p.shared.slot.lock().expect("pool lock");
        if slot.job.is_some() {
            // Busy pool: run inline. Same task geometry, same results.
            drop(slot);
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        slot.job = Some(Arc::clone(&job));
        slot.seq += 1;
        p.shared.work.notify_all();
    }
    job.execute();
    job.wait();
    p.shared.slot.lock().expect("pool lock").job = None;
}

/// Splits `0..total` into `pieces` contiguous ranges (the last may be
/// short) and runs `f(piece_index, range)` for each in parallel.
pub fn par_ranges(total: usize, pieces: usize, f: impl Fn(usize, Range<usize>) + Sync) {
    if total == 0 {
        return;
    }
    let call = audit::next_call_id();
    let pieces = pieces.clamp(1, total);
    if pieces == 1 {
        if let Some(id) = call {
            audit::record(id, 0, total, total);
        }
        f(0, 0..total);
        return;
    }
    let chunk = total.div_ceil(pieces);
    run(total.div_ceil(chunk), |i| {
        let start = i * chunk;
        let end = (start + chunk).min(total);
        if let Some(id) = call {
            audit::record(id, start, end - start, total);
        }
        f(i, start..end);
    });
}

/// Pointer wrapper that lets disjoint-chunk writers cross the thread
/// boundary. Disjointness is the caller's obligation.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// wrapper — edition-2021 disjoint capture would otherwise pull out the
    /// bare `*mut T`, which is deliberately not `Send`/`Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Processes `data` as disjoint chunks of `chunk` elements (the last may be
/// short), calling `f(chunk_index, chunk_slice)` in parallel — the rayon
/// `par_chunks_mut` shape.
///
/// # Panics
/// Panics if `chunk == 0` and `data` is non-empty.
pub fn par_chunks_mut<T: Send>(data: &mut [T], chunk: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    let total = data.len();
    if total == 0 {
        return;
    }
    assert!(chunk > 0, "par_chunks_mut: chunk size must be positive");
    let call = audit::next_call_id();
    let ptr = SendPtr(data.as_mut_ptr());
    run(total.div_ceil(chunk), move |i| {
        let start = i * chunk;
        let len = chunk.min(total - start);
        if let Some(id) = call {
            audit::record(id, start, len, total);
        }
        // SAFETY: chunks are disjoint by construction ([start, start+len)
        // for distinct i never overlap) and `data` outlives the enclosing
        // `run`, which joins every task before returning.
        let slice = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start), len) };
        f(i, slice);
    });
}

/// Maps `f` over `items` with one output slot per item, fanning contiguous
/// chunks out over the pool — the shared scoring loop for model inference.
///
/// The fan-out width follows [`current_split`] (so `HIERGAT_THREADS` and
/// [`with_threads`] govern it like every other kernel); inputs smaller than
/// two chunks per worker run serially, where fan-out overhead would
/// dominate. Chunk geometry never affects results: each item writes only
/// its own slot, so the output is identical at every width.
pub fn par_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send + Default,
    F: Fn(&I) -> O + Sync,
{
    let mut out: Vec<O> = std::iter::repeat_with(O::default).take(items.len()).collect();
    let workers = current_split();
    if items.len() < 2 * workers {
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = f(item);
        }
    } else {
        let chunk = items.len().div_ceil(workers);
        par_chunks_mut(&mut out, chunk, |ci, slots| {
            for (k, slot) in slots.iter_mut().enumerate() {
                *slot = f(&items[ci * chunk + k]);
            }
        });
    }
    out
}

/// Runs two closures, potentially in parallel, and returns both results —
/// the rayon `join` shape.
pub fn par_join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    let a = Mutex::new(Some(a));
    let b = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    run(2, |i| {
        if i == 0 {
            let f = a.lock().expect("join lock").take().expect("join closure");
            *ra.lock().expect("join lock") = Some(f());
        } else {
            let f = b.lock().expect("join lock").take().expect("join closure");
            *rb.lock().expect("join lock") = Some(f());
        }
    });
    (
        ra.into_inner().expect("join lock").expect("join result"),
        rb.into_inner().expect("join lock").expect("join result"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_executes_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        run(97, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_zero_tasks_is_a_no_op() {
        run(0, |_| panic!("must not be called"));
    }

    #[test]
    fn par_chunks_mut_covers_the_slice_disjointly() {
        let mut data = vec![0u32; 1003];
        par_chunks_mut(&mut data, 17, |ci, chunk| {
            for (o, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 17 + o) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn par_ranges_partitions_without_gaps() {
        let sum = AtomicU64::new(0);
        let count = AtomicUsize::new(0);
        par_ranges(1000, 7, |_, range| {
            count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(range.map(|i| i as u64).sum(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        assert_eq!(count.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn par_join_returns_both_results() {
        let (a, b) = par_join(|| 6 * 7, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_run_degrades_to_inline_without_deadlock() {
        let total = AtomicUsize::new(0);
        run(4, |_| {
            run(8, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn with_threads_overrides_and_restores_split() {
        let outside = current_split();
        with_threads(5, || assert_eq!(current_split(), 5));
        assert_eq!(current_split(), outside);
        with_threads(0, || assert_eq!(current_split(), 1, "0 clamps to 1"));
    }

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn concurrent_callers_from_plain_threads_are_safe() {
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let acc = AtomicUsize::new(0);
                    run(64, |i| {
                        acc.fetch_add(i, Ordering::Relaxed);
                    });
                    assert_eq!(acc.load(Ordering::Relaxed), 63 * 64 / 2);
                });
            }
        });
    }
}
