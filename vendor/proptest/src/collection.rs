//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Things convertible into a `[min, max)`-style length range.
pub trait IntoSizeRange {
    /// Inclusive lower and upper length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "vec strategy: empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.min..=self.max);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
