//! Strategies: composable random-value generators.

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among boxed strategies; built by [`crate::prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// One parsed atom of the regex-literal subset: a character class plus a
/// repetition count range.
struct Atom {
    chars: CharClass,
    min: usize,
    max: usize,
}

enum CharClass {
    /// `.` — printable characters (ASCII plus a few exotic ones, so tests
    /// exercising Unicode normalization still see interesting inputs).
    Any,
    /// `[...]` — an explicit set.
    Set(Vec<char>),
}

/// Characters `.` can produce. Includes uppercase, whitespace-adjacent and
/// non-ASCII letters (e.g. U+1D400 which has no lowercase mapping).
const ANY_EXTRA: &[char] = &['é', 'Ü', 'ß', '中', '\u{1D400}', 'Σ', 'ж'];

fn parse_class(bytes: &[u8], i: &mut usize) -> CharClass {
    match bytes[*i] {
        b'.' => {
            *i += 1;
            CharClass::Any
        }
        b'[' => {
            *i += 1;
            let mut set = Vec::new();
            while bytes[*i] != b']' {
                let c = if bytes[*i] == b'\\' {
                    *i += 1;
                    match bytes[*i] {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    }
                } else {
                    bytes[*i] as char
                };
                *i += 1;
                if bytes[*i] == b'-' && bytes[*i + 1] != b']' {
                    *i += 1;
                    let hi = bytes[*i] as char;
                    *i += 1;
                    for x in c..=hi {
                        set.push(x);
                    }
                } else {
                    set.push(c);
                }
            }
            *i += 1; // ']'
            assert!(!set.is_empty(), "regex strategy: empty character class");
            CharClass::Set(set)
        }
        other => {
            *i += 1;
            CharClass::Set(vec![other as char])
        }
    }
}

fn parse_quant(bytes: &[u8], i: &mut usize) -> (usize, usize) {
    if *i >= bytes.len() || bytes[*i] != b'{' {
        return (1, 1);
    }
    *i += 1;
    let mut min = 0usize;
    while bytes[*i].is_ascii_digit() {
        min = min * 10 + usize::from(bytes[*i] - b'0');
        *i += 1;
    }
    let max = if bytes[*i] == b',' {
        *i += 1;
        let mut m = 0usize;
        while bytes[*i].is_ascii_digit() {
            m = m * 10 + usize::from(bytes[*i] - b'0');
            *i += 1;
        }
        m
    } else {
        min
    };
    assert!(bytes[*i] == b'}', "regex strategy: unterminated quantifier");
    *i += 1;
    (min, max)
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let bytes = pattern.as_bytes();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let chars = parse_class(bytes, &mut i);
        let (min, max) = parse_quant(bytes, &mut i);
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

/// String-literal regex strategies for the subset the workspace uses:
/// classes (`[a-z0-9]`, `[ -~\n]`), `.`, and `{m,n}` quantifiers.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                match &atom.chars {
                    CharClass::Any => {
                        // Mostly printable ASCII, occasionally exotic.
                        if rng.gen_bool(0.15) {
                            out.push(ANY_EXTRA[rng.gen_range(0..ANY_EXTRA.len())]);
                        } else {
                            out.push(rng.gen_range(0x20u8..0x7F) as char);
                        }
                    }
                    CharClass::Set(set) => out.push(set[rng.gen_range(0..set.len())]),
                }
            }
        }
        out
    }
}
