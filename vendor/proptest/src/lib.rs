//! Offline mini-proptest.
//!
//! crates.io is unreachable in the build environment, so the workspace
//! vendors a small property-testing harness with the `proptest` API surface
//! its test suites use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map` / `prop_flat_map` / `boxed`, range and regex-literal
//! strategies, [`collection::vec`], [`prop_oneof!`], [`Just`], and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: failures report the sampled
//! inputs via the assertion message instead. Sampling is deterministic —
//! every test function runs a fixed number of cases from a fixed seed.

use rand::rngs::StdRng;

pub mod collection;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Test-runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

/// Everything the test modules import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[doc(hidden)]
pub fn __test_rng(test_name: &str) -> StdRng {
    use rand::SeedableRng;
    // Stable per-test seed so failures reproduce across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in collection::vec(0.0f32..1.0, 1..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::__test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                { $body }
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Asserts inside a property test (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..9, y in 0.5f32..2.5, z in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0i32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn regex_class_strategy(s in "[a-c]{2,4}", t in ".{0,5}") {
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.chars().count() <= 5);
        }

        #[test]
        fn oneof_and_flat_map(x in prop_oneof![Just(1), Just(2)].prop_flat_map(|k| (0..k as u64)
            .prop_map(move |v| (k, v))))
        {
            let (k, v) = x;
            prop_assert!(v < k as u64);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::Strategy;
        let mut a = crate::__test_rng("x");
        let mut b = crate::__test_rng("x");
        let s = 0u64..1000;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
