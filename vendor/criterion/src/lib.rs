//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! (`bench_function`, `iter`, `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros) backed by a plain wall-clock timer: a short
//! warm-up, then `sample_size` timed samples whose median is reported.
//! No plots, no statistics beyond median/min/max.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Batch-size hint, accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it repeatedly per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration-count calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` with a fresh `setup` output per invocation.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        s.sort_unstable();
        let median = s[s.len() / 2];
        println!(
            "{name:<40} median {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            median,
            s[0],
            s[s.len() - 1],
            s.len()
        );
        self
    }
}

/// Declares a benchmark group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
