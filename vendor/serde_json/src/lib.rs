//! Offline stand-in for `serde_json`: renders and parses the vendored
//! serde [`Value`] tree as JSON text.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes
//! including `\uXXXX` surrogate pairs, numbers, booleans, null). Non-finite
//! floats serialize as `null`, matching serde_json's default behaviour.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self(e.to_string())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` prints the shortest representation that round-trips.
                let text = x.to_string();
                out.push_str(&text);
                // Keep a float marker so parsing stays type-faithful.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!("unexpected byte `{}` at {}", c as char, self.pos))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(Error::new)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(Error::new)
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(Error::new)
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            continue; // parse_hex4 advanced past the digits
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).expect("serialize bool"), "true");
        assert_eq!(to_string(&42u32).expect("serialize u32"), "42");
        assert_eq!(to_string(&-7i64).expect("serialize i64"), "-7");
        assert_eq!(to_string(&1.5f64).expect("serialize f64"), "1.5");
        assert_eq!(from_str::<u64>("42").expect("parse u64"), 42);
        assert_eq!(from_str::<f32>("0.25").expect("parse f32"), 0.25);
        assert_eq!(from_str::<String>("\"a\\nb\"").expect("parse escaped string"), "a\nb");
    }

    #[test]
    fn float_f32_roundtrip_is_exact() {
        for &x in &[0.1f32, -3.25, 1e-7, 123456.78, f32::MIN_POSITIVE] {
            let text = to_string(&x).expect("serialize f32");
            let back: f32 = from_str(&text).expect("reparse f32");
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn integer_valued_floats_keep_a_float_marker() {
        let text = to_string(&2.0f32).expect("serialize f32");
        assert_eq!(text, "2.0");
        assert_eq!(from_str::<f32>(&text).expect("reparse f32"), 2.0);
    }

    #[test]
    fn vec_and_nested_roundtrip() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0]];
        let text = to_string(&v).expect("serialize nested vec");
        let back: Vec<Vec<f32>> = from_str(&text).expect("reparse nested vec");
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" slash\\ tab\t newline\n unicode\u{1F600}control\u{1}".to_string();
        let text = to_string(&s).expect("serialize string");
        let back: String = from_str(&text).expect("reparse string");
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_parses() {
        let back: String = from_str("\"\\ud83d\\ude00\"").expect("decode surrogate pair");
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Bool(false), Value::Null])),
        ]);
        let text = to_string_pretty(&v).expect("pretty-serialize value");
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).expect("reparse value");
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u32>("-3").is_err());
    }
}
