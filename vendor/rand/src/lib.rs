//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand` 0.8: a seeded
//! xoshiro256++ generator behind [`rngs::StdRng`], the [`Rng`] extension
//! methods the codebase uses (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Streams are deterministic for a given seed but are **not** bit-compatible
//! with upstream `rand`; nothing in this workspace depends on the exact
//! stream, only on seeded reproducibility and statistical uniformity.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Rand: Sized {
    /// Draws one uniform sample.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Rand for f32 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Rand for f64 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Rand for bool {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_rand_int {
    ($($t:ty),*) => {$(
        impl Rand for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_rand_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Rand>::rand(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`f32`/`f64` in `[0, 1)`, full range for ints).
    fn gen<T: Rand>(&mut self) -> T
    where
        Self: Sized,
    {
        T::rand(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::rand(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}
