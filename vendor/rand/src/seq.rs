//! Slice helpers, mirroring `rand::seq::SliceRandom`.

use crate::RngCore;

/// Random slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            #[allow(clippy::cast_possible_truncation)]
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            #[allow(clippy::cast_possible_truncation)]
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).expect("slice is non-empty") as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
