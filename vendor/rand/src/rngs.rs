//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
///
/// Deterministic per seed; not stream-compatible with upstream `rand`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_unit_interval_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..10);
            assert!((5..10).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&i));
        }
    }
}
