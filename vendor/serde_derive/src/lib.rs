//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes this
//! workspace serializes:
//!
//! * structs with named fields (honouring `#[serde(skip)]`,
//!   `#[serde(default)]`, and `#[serde(default = "path")]`),
//! * tuple structs (newtypes serialize transparently, wider ones as arrays),
//! * enums whose variants are all unit variants (serialized as strings).
//!
//! Anything else (generics, data-carrying enums) produces a compile error
//! rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    /// `None`: required on deserialize. `Some(None)`: `#[serde(default)]`
    /// (falls back to `Default::default()` when the field is absent).
    /// `Some(Some(path))`: `#[serde(default = "path")]` (calls `path()`).
    default: Option<Option<String>>,
}

enum Shape {
    Named { name: String, fields: Vec<Field> },
    Tuple { name: String, arity: usize },
    Unit { name: String },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens")
}

/// Per-field `#[serde(...)]` options understood by the derive.
#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    default: Option<Option<String>>,
}

/// Folds one attribute group's `serde(...)` options into `attrs`.
fn parse_serde_attr(group: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let mut it = group.stream().into_iter();
    let (Some(TokenTree::Ident(head)), Some(TokenTree::Group(args))) = (it.next(), it.next())
    else {
        return;
    };
    if head.to_string() != "serde" {
        return;
    }
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => attrs.skip = true,
            TokenTree::Ident(id) if id.to_string() == "default" => {
                attrs.default = Some(None);
                if matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    if let Some(TokenTree::Literal(lit)) = toks.get(i + 2) {
                        let path = lit.to_string().trim_matches('"').to_string();
                        attrs.default = Some(Some(path));
                        i += 2;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Skips `#[...]` attributes at `i`, collecting any `serde(...)` options.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(&tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            parse_serde_attr(g, &mut attrs);
        }
        *i += 2;
    }
    attrs
}

/// Skips `pub` / `pub(...)` at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(&tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_named_fields(body: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in field list: {other}")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected ':' after field `{name}`")),
        }
        // Consume the type up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name, skip: attrs.skip, default: attrs.default });
    }
    Ok(fields)
}

fn count_tuple_fields(body: &proc_macro::Group) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut saw_any = false;
    for t in body.stream() {
        saw_any = true;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => arity += 1,
                _ => {}
            }
        }
    }
    // Trailing comma would overcount by design; none of our types use one.
    if saw_any {
        arity + 1
    } else {
        0
    }
}

fn parse_enum_variants(body: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; the vendored serde derive only supports unit variants"
                ))
            }
            Some(other) => return Err(format!("unexpected token after variant `{name}`: {other}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "`{name}` is generic; the vendored serde derive only supports concrete types"
        ));
    }
    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Named { name, fields: parse_named_fields(g)? })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Shape::Tuple { name, arity: count_tuple_fields(g) })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Ok(Shape::Unit { name }),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Enum { name, variants: parse_enum_variants(g)? })
        }
        _ => Err(format!("unsupported shape for `{name}`")),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named { name, fields } => {
            let entries: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Object(::std::vec![{entries}])
                    }}
                }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{
                    ::serde::Serialize::to_value(&self.0)
                }}
            }}"
        ),
        Shape::Tuple { name, arity } => {
            let entries: String =
                (0..arity).map(|k| format!("::serde::Serialize::to_value(&self.{k}),")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Array(::std::vec![{entries}])
                    }}
                }}"
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}
            }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default(),", f.name)
                    } else {
                        // Absent fields: error unless the field opted into a
                        // fallback via `#[serde(default)]` / `default = "path"`.
                        let missing = match &f.default {
                            None => format!(
                                "return ::std::result::Result::Err(
                                    ::serde::DeError::custom(\"{name}: missing field `{0}`\"))",
                                f.name
                            ),
                            Some(None) => "::std::default::Default::default()".to_string(),
                            Some(Some(path)) => format!("{path}()"),
                        };
                        format!(
                            "{0}: match ::serde::Value::get_field(fields, \"{0}\") {{
                                ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,
                                ::std::option::Option::None => {missing},
                            }},",
                            f.name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        let fields = v.as_object().ok_or_else(|| ::serde::DeError::custom(\"{name}: expected object\"))?;
                        ::std::result::Result::Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                    ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))
                }}
            }}"
        ),
        Shape::Tuple { name, arity } => {
            let inits: String = (0..arity)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        match v {{
                            ::serde::Value::Array(items) if items.len() == {arity} =>
                                ::std::result::Result::Ok({name}({inits})),
                            _ => ::std::result::Result::Err(::serde::DeError::custom(\"{name}: expected {arity}-array\")),
                        }}
                    }}
                }}"
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                    ::std::result::Result::Ok({name})
                }}
            }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        match v {{
                            ::serde::Value::Str(s) => match s.as_str() {{
                                {arms}
                                other => ::std::result::Result::Err(::serde::DeError::custom(
                                    ::std::format!(\"{name}: unknown variant `{{other}}`\"))),
                            }},
                            _ => ::std::result::Result::Err(::serde::DeError::custom(\"{name}: expected string\")),
                        }}
                    }}
                }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl")
}
