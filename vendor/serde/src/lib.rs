//! Offline stand-in for `serde`.
//!
//! crates.io is unreachable in the build environment, so the workspace
//! vendors a minimal serialization framework with the same surface the
//! codebase uses: `#[derive(Serialize, Deserialize)]` (including
//! `#[serde(skip)]`) and the `serde_json` functions `to_string`,
//! `to_string_pretty`, and `from_str`.
//!
//! Instead of serde's visitor-based data model, everything round-trips
//! through an owned [`Value`] tree; `serde_json` renders and parses that
//! tree. The derive macro (in the sibling `serde_derive` crate) generates
//! [`Serialize::to_value`] / [`Deserialize::from_value`] impls for plain
//! structs, newtype/tuple structs, and unit-variant enums — the only shapes
//! this workspace serializes.

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered field list (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Self::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Deserialization error (the only fallible direction in this model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::try_from(*self).expect("unsigned fits u64"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => u64::try_from(*n).expect("non-negative"),
                    other => return Err(DeError::custom(format!("expected unsigned int, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::try_from(*self).expect("signed fits i64"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    other => return Err(DeError::custom(format!("expected int, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            #[allow(clippy::cast_precision_loss)]
            Value::UInt(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        #[allow(clippy::cast_possible_truncation)]
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::custom(format!("expected 2-array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}
