#!/bin/sh
# Runs every table/figure harness in priority order, appending to bench_output.txt.
# The machine-readable lint + race-audit report and the interval-audit
# report (proven value ranges, numerical-safety findings, quantisation
# feasibility) for the benched build are attached first so regressions in
# the audited graphs surface alongside the numbers they would taint.
set -x
cd /root/repo
: > bench_output.txt
echo "### lint report (hiergat lint --json)" >> bench_output.txt
cargo run --release -q --bin hiergat -- lint \
  --dataset fodors-zagats --scale 0.2 --tier dbert --deny warn --json \
  >> bench_output.txt 2>&1 || echo "### lint gate FAILED" >> bench_output.txt
echo "### interval audit report (hiergat audit --json)" >> bench_output.txt
cargo run --release -q --bin hiergat -- audit \
  --dataset fodors-zagats --scale 0.2 --tier dbert --deny warn --json \
  >> bench_output.txt 2>&1 || echo "### audit gate FAILED" >> bench_output.txt
echo "### optimiser report (hiergat optimize --json)" >> bench_output.txt
cargo run --release -q --bin hiergat -- optimize \
  --dataset fodors-zagats --scale 0.2 --tier dbert --json \
  >> bench_output.txt 2>&1 || echo "### optimize gate FAILED" >> bench_output.txt
# The kernels bench runs with the simd feature (the shipped configuration
# of the matmul microkernel) and is held to the acceptance floor: the
# 256^3 matmul must beat the pinned legacy scalar kernel by >= 4x with
# every pooled kernel bitwise-equal to serial.
echo "### running kernels (--features simd)" >> bench_output.txt
cargo bench -p hiergat-bench --bench kernels --features simd >> bench_output.txt 2>&1 \
  || { echo "### KERNELS BENCH FAILED" >> bench_output.txt; exit 1; }
python3 - <<'EOF' >> bench_output.txt 2>&1 || { echo "### KERNELS SPEEDUP FLOOR FAILED" >> bench_output.txt; exit 1; }
import json
d = json.load(open("BENCH_kernels.json"))
row = next(r for r in d["kernels"] if r["name"] == "matmul_256x256x256")
micro = row["micro_speedup"] or 0.0
print(f"kernels floor check: simd={d['simd']} all_bitwise_equal={d['all_bitwise_equal']} "
      f"matmul_256x256x256 micro_speedup={micro:.2f}x")
assert d["simd"], "kernels bench did not run with the simd feature"
assert d["all_bitwise_equal"], "pooled kernels diverged from serial"
assert micro >= 4.0, f"microkernel floor not met: {micro:.2f}x < 4x"
# Quantised-session floor. A decode-compute-encode interpreter cannot
# match the f32 plan's direct-arena replay on throughput (DESIGN.md
# section 17) -- the quantisation win is storage -- so the gates are:
# both storage footprints strictly shrink, score drift stays small, and
# throughput holds a conservative fraction of the optimised f32 session
# (measured ~0.6x; the floor leaves margin for machine noise).
q = d["quantised"]
print(f"quantised floor check: {q['quantised_pairs_per_s']:.0f} pairs/s "
      f"({q['speedup_vs_f32_session']:.2f}x f32 session), weights "
      f"{q['weight_bytes_f32']} -> {q['weight_bytes_quantised']} B, arena "
      f"{q['arena_bytes_f32']} -> {q['arena_bytes_quantised']} B, "
      f"max drift {q['max_score_drift']:.4f}")
assert q["arena_bytes_quantised"] < q["arena_bytes_f32"], "quantised arena did not shrink"
assert q["weight_bytes_quantised"] < q["weight_bytes_f32"], "quantised weights did not shrink"
assert q["max_score_drift"] <= 0.05, f"quantised drift too large: {q['max_score_drift']}"
assert q["speedup_vs_f32_session"] >= 0.35, (
    f"quantised throughput floor not met: {q['speedup_vs_f32_session']:.2f}x < 0.35x f32 session")
EOF
echo "### done kernels" >> bench_output.txt
# Corpus-scale streaming resolve floors: the full blocking → cascade →
# clustering pipeline must hold throughput and cluster quality on the
# synthetic corpus (10^6 records at scale 1.0), and routing the ambiguous
# cosine band through the trained session must not lose cluster F1
# against the cosine-only cascade (everything is seeded, so the
# comparison is deterministic at a given scale).
echo "### running resolve" >> bench_output.txt
cargo bench -p hiergat-bench --bench resolve >> bench_output.txt 2>&1 \
  || { echo "### RESOLVE BENCH FAILED" >> bench_output.txt; exit 1; }
python3 - <<'EOF' >> bench_output.txt 2>&1 || { echo "### RESOLVE FLOOR FAILED" >> bench_output.txt; exit 1; }
import json
d = json.load(open("BENCH_resolve.json"))
b = d["band"]
print(f"resolve floor check: {d['entities']} entities, {d['entities_per_s']:.0f} entities/s, "
      f"cluster F1 {d['cluster_f1']:.3f}, band F1 {b['band_f1']:.3f} "
      f"vs cosine-only {b['cosine_f1']:.3f}")
assert d["entities_per_s"] >= 5_000, (
    f"resolve throughput floor not met: {d['entities_per_s']:.0f} < 5000 entities/s")
assert d["cluster_f1"] >= 0.78, f"cluster F1 floor not met: {d['cluster_f1']:.3f} < 0.78"
assert b["band_f1"] >= b["cosine_f1"] - 0.005, (
    f"model band lost cluster F1: {b['band_f1']:.3f} vs cosine {b['cosine_f1']:.3f}")
EOF
echo "### done resolve" >> bench_output.txt
for b in table4_magellan table7_collective table3_lm_sizes fig10_wdc fig9_attention table9_context_ablation table10_views table11_modules table8_collective_lms fig11_training_time micro; do
  echo "### running $b" >> bench_output.txt
  cargo bench -p hiergat-bench --bench "$b" >> bench_output.txt 2>&1
  echo "### done $b" >> bench_output.txt
done
echo BENCH_SUITE_DONE >> bench_output.txt
