#!/bin/sh
# Runs every table/figure harness in priority order, appending to bench_output.txt.
# The machine-readable lint + race-audit report and the interval-audit
# report (proven value ranges, numerical-safety findings, quantisation
# feasibility) for the benched build are attached first so regressions in
# the audited graphs surface alongside the numbers they would taint.
set -x
cd /root/repo
: > bench_output.txt
echo "### lint report (hiergat lint --json)" >> bench_output.txt
cargo run --release -q --bin hiergat -- lint \
  --dataset fodors-zagats --scale 0.2 --tier dbert --deny warn --json \
  >> bench_output.txt 2>&1 || echo "### lint gate FAILED" >> bench_output.txt
echo "### interval audit report (hiergat audit --json)" >> bench_output.txt
cargo run --release -q --bin hiergat -- audit \
  --dataset fodors-zagats --scale 0.2 --tier dbert --deny warn --json \
  >> bench_output.txt 2>&1 || echo "### audit gate FAILED" >> bench_output.txt
for b in kernels table4_magellan table7_collective table3_lm_sizes fig10_wdc fig9_attention table9_context_ablation table10_views table11_modules table8_collective_lms fig11_training_time micro; do
  echo "### running $b" >> bench_output.txt
  cargo bench -p hiergat-bench --bench "$b" >> bench_output.txt 2>&1
  echo "### done $b" >> bench_output.txt
done
echo BENCH_SUITE_DONE >> bench_output.txt
