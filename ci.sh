#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy (warnings are errors), release
# build, and the full test suite. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The simd cfg gates the crate's only unsafe code; lint it explicitly so
# the feature-flagged path cannot rot behind the default build.
echo "==> cargo clippy --features simd (tensor + bench) -- -D warnings"
cargo clippy -p hiergat-tensor -p hiergat-bench --all-targets --features simd -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Kernel-equivalence sweep: the tensor suite's bitwise serial-vs-parallel
# tests must hold under a real single-thread pool and a real 8-wide pool,
# not just the in-process width override. The sweep runs in both feature
# configs: the portable microkernel (pinned bitwise to the naive i-k-j
# reference) and the AVX2+FMA tile (pinned bitwise across widths within
# its own build).
echo "==> HIERGAT_THREADS=1 cargo test -q -p hiergat-tensor -p parallel"
HIERGAT_THREADS=1 cargo test -q -p hiergat-tensor -p parallel

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-tensor -p parallel"
HIERGAT_THREADS=8 cargo test -q -p hiergat-tensor -p parallel

echo "==> HIERGAT_THREADS=1 cargo test -q -p hiergat-tensor --features simd"
HIERGAT_THREADS=1 cargo test -q -p hiergat-tensor --features simd

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-tensor --features simd"
HIERGAT_THREADS=8 cargo test -q -p hiergat-tensor --features simd

# Arena differential gate: heap-vs-arena training must be bitwise
# identical for every builtin model under a real single-thread pool and a
# real 8-wide pool (each run also sweeps split widths 1 and 8 via the
# in-process override), and steady-state arena steps must allocate no
# tensors.
echo "==> HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test arena_differential --test arena_zero_alloc"
HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test arena_differential --test arena_zero_alloc

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test arena_differential --test arena_zero_alloc"
HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test arena_differential --test arena_zero_alloc

# Model-registry conformance gate: every registered model's inference
# session must reproduce eager predictions bitwise (across repeated calls
# and pool widths), record dropout-free inference graphs that lint clean
# under eval rules, and plan strictly less arena for inference than for
# training — under a real 1-wide and a real 8-wide pool.
echo "==> HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test runtime_conformance"
HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test runtime_conformance

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test runtime_conformance"
HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test runtime_conformance

# The same differential gates under the simd microkernel tile: FMA rounds
# each term once, so the simd build's values differ from the portable
# build — but heap-vs-arena, eager-vs-session, and width-1-vs-width-8 must
# all still be bitwise identical *within* the simd build.
echo "==> HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --features simd --test arena_differential --test arena_zero_alloc --test runtime_conformance"
HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --features simd \
  --test arena_differential --test arena_zero_alloc --test runtime_conformance

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --features simd --test arena_differential --test arena_zero_alloc --test runtime_conformance"
HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --features simd \
  --test arena_differential --test arena_zero_alloc --test runtime_conformance

# Optimiser differential gate: for every builtin model, the certified
# tape optimiser must produce graphs whose session scores are bitwise
# identical to the unoptimised eager path, with every rewrite certificate
# valid and the optimised graphs lint-clean — under a real 1-wide and a
# real 8-wide pool, and again under the simd microkernel tile (whose FMA
# values differ from the portable build, so equality must hold *within*
# each build).
echo "==> HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test optimize_differential"
HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test optimize_differential

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test optimize_differential"
HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test optimize_differential

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --features simd --test optimize_differential"
HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --features simd --test optimize_differential

# Quantisation acceptance gate: every builtin model quantised off the
# absint feasibility table must hold Magellan F1 within the configured
# delta of its f32 session, never grow the activation arena, strictly
# shrink the total footprint, and score deterministically across pool
# widths and optimiser settings — under a real 1-wide and a real 8-wide
# pool, and again under the simd build (whose F16C encode path must
# produce the same bits as the scalar converters).
echo "==> HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test quantise_acceptance"
HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test quantise_acceptance

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test quantise_acceptance"
HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test quantise_acceptance

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --features simd --test quantise_acceptance"
HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --features simd --test quantise_acceptance

# Streaming resolve gate: the corpus-scale pipeline (sharded blocking →
# cosine cascade → union-find clustering) must clear its cluster-F1 floor
# and produce bitwise-identical cluster assignments at pool widths 1 and
# 8 — first in-process, then across the CLI (`hiergat resolve`) where the
# emitted CSVs for a 3k-record synthetic corpus must compare equal.
echo "==> cargo test -q -p hiergat-bench --test resolve_pipeline"
cargo test -q -p hiergat-bench --test resolve_pipeline

echo "==> hiergat resolve width determinism (HIERGAT_THREADS=1 vs 8)"
HIERGAT_THREADS=1 ./target/release/hiergat resolve \
  --entities 3000 --seed 11 --accept 0.55 --out /tmp/hiergat_resolve_w1.csv
HIERGAT_THREADS=8 ./target/release/hiergat resolve \
  --entities 3000 --seed 11 --accept 0.55 --out /tmp/hiergat_resolve_w8.csv
cmp /tmp/hiergat_resolve_w1.csv /tmp/hiergat_resolve_w8.csv
rm -f /tmp/hiergat_resolve_w1.csv /tmp/hiergat_resolve_w8.csv

# Interval-audit differential gate: for every builtin model, the abstract
# interpreter's proven per-node intervals must contain every concrete
# value an eager scoring run records, under observed and symbolic
# seeding — at both pool widths, since eager recording uses the kernel
# pool while the proven intervals must not depend on it.
echo "==> HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test absint_containment"
HIERGAT_THREADS=1 cargo test -q -p hiergat-bench --test absint_containment

echo "==> HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test absint_containment"
HIERGAT_THREADS=8 cargo test -q -p hiergat-bench --test absint_containment

# Lint gate: every builtin model graph must pass the rule engine with
# warnings denied, and the kernel write-disjointness race audit must
# verify under both pool widths (the audit itself also sweeps widths
# 1/2/8 via the in-process override).
echo "==> hiergat lint --deny warn (HIERGAT_THREADS=1)"
HIERGAT_THREADS=1 ./target/release/hiergat lint \
  --dataset fodors-zagats --scale 0.2 --tier dbert --deny warn

echo "==> hiergat lint --deny warn (HIERGAT_THREADS=8)"
HIERGAT_THREADS=8 ./target/release/hiergat lint \
  --dataset fodors-zagats --scale 0.2 --tier dbert --deny warn

# Numerical-safety gate: the interval audit of every builtin model's
# inference scoring graph must report zero findings (no reachable
# overflow, underflow-to-zero, or NaN under symbolic input boxes).
echo "==> hiergat audit --deny warn"
./target/release/hiergat audit \
  --dataset fodors-zagats --scale 0.2 --tier dbert --deny warn

# Quantisation CLI gate: every builtin model must pass the F1-delta and
# storage gates of `hiergat quantise` on the bundled dataset (the command
# exits non-zero when any model's gate fails).
echo "==> hiergat quantise"
./target/release/hiergat quantise \
  --dataset fodors-zagats --scale 0.2 --tier dbert

# Translation-validation gate: every builtin model graph must optimise
# with valid shape + interval certificates, and the optimised session must
# reproduce eager predictions bitwise (`--verify` runs the differential).
echo "==> hiergat optimize --verify"
./target/release/hiergat optimize \
  --dataset fodors-zagats --scale 0.2 --tier dbert --verify

echo "==> ci gate passed"
