#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy (warnings are errors), release
# build, and the full test suite. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> ci gate passed"
