//! Cross-crate integration tests: the full pipeline from synthetic data
//! generation through blocking, pre-training, fine-tuning, and evaluation.

use hiergat::{train_pairwise, HierGat, HierGatConfig};
use hiergat_baselines::{train_pair_model, Ditto, DittoConfig, Magellan};
use hiergat_blocking::{KeywordBlocker, TfIdfBlocker};
use hiergat_data::MagellanDataset;
use hiergat_lm::{corpus_from_entities, pretrain, LmTier, PretrainConfig};

#[test]
fn full_pairwise_pipeline_runs_end_to_end() {
    // Data -> pretrain -> fine-tune -> evaluate, all deterministic.
    let ds = MagellanDataset::FodorsZagats.load(0.4);
    assert!(ds.train.len() > 20);

    let entities: Vec<_> =
        ds.train.iter().flat_map(|p| [p.left.clone(), p.right.clone()]).collect();
    let corpus = corpus_from_entities(entities.iter());
    let pre = pretrain(
        LmTier::MiniDistil.config(),
        &corpus,
        &PretrainConfig { epochs: 1, pair_epochs: 1, ..Default::default() },
    );

    let mut model = HierGat::new(
        HierGatConfig::pairwise().with_tier(LmTier::MiniDistil).with_epochs(4),
        ds.arity(),
    );
    let copied = model.load_pretrained(&pre.store);
    assert!(copied > 10, "pre-trained LM tensors must load");

    let report = train_pairwise(&mut model, &ds);
    assert!(report.test_f1 > 0.45, "HierGAT must learn the easy dataset, got {}", report.test_f1);
}

#[test]
fn hiergat_beats_chance_on_heterogeneous_data() {
    // On the heterogeneous Walmart-Amazon stand-in (attribute injection),
    // a trained model must beat the naive all-positive baseline.
    let ds = MagellanDataset::WalmartAmazon.load(0.8);
    let all_positive_f1 = {
        let pos = ds.test.iter().filter(|p| p.label).count() as f64;
        2.0 * pos / (ds.test.len() as f64 + pos)
    };
    let entities: Vec<_> =
        ds.train.iter().flat_map(|p| [p.left.clone(), p.right.clone()]).collect();
    let corpus = corpus_from_entities(entities.iter());
    let pre = pretrain(LmTier::MiniDistil.config(), &corpus, &PretrainConfig::default());
    let mut model = HierGat::new(
        HierGatConfig::pairwise().with_tier(LmTier::MiniDistil).with_epochs(8),
        ds.arity(),
    );
    model.load_pretrained(&pre.store);
    let report = train_pairwise(&mut model, &ds);
    assert!(
        report.test_f1 > all_positive_f1,
        "HierGAT {} must beat the all-positive baseline {}",
        report.test_f1,
        all_positive_f1
    );
}

#[test]
fn ditto_pipeline_runs_end_to_end() {
    let ds = MagellanDataset::DblpAcm.load(0.7);
    let entities: Vec<_> =
        ds.train.iter().flat_map(|p| [p.left.clone(), p.right.clone()]).collect();
    let corpus = corpus_from_entities(entities.iter());
    let pre = pretrain(LmTier::MiniDistil.config(), &corpus, &PretrainConfig::default());
    let mut ditto =
        Ditto::new(DittoConfig { lm_tier: LmTier::MiniDistil, epochs: 8, ..Default::default() });
    ditto.load_pretrained(&pre.store);
    let report = train_pair_model(&mut ditto, &ds);
    assert!(report.test_f1 > 0.4, "Ditto on clean citations: {}", report.test_f1);
}

#[test]
fn magellan_baseline_runs_end_to_end() {
    let ds = MagellanDataset::FodorsZagats.load(0.5);
    let (model, report) = Magellan::train(&ds, 3);
    assert!(report.test_f1 > 0.5, "Magellan on clean data: {}", report.test_f1);
    // The trained matcher scores arbitrary pairs.
    let s = model.score(&ds.test[0]);
    assert!((0.0..=1.0).contains(&s));
}

#[test]
fn blocking_integrates_with_generated_entities() {
    let ds = MagellanDataset::AmazonGoogle.load(0.3);
    let rights: Vec<_> = ds.train.iter().map(|p| p.right.clone()).collect();

    let kw = KeywordBlocker::default();
    let pairs: Vec<_> = ds.train.clone();
    let total = pairs.len();
    let kept = kw.filter_pairs(pairs);
    // Keyword blocking keeps nearly all true matches.
    let kept_pos = kept.iter().filter(|p| p.label).count();
    let total_pos = ds.train.iter().filter(|p| p.label).count();
    assert!(kept.len() <= total);
    assert!(
        kept_pos * 10 >= total_pos * 8,
        "keyword blocking lost too many positives: {kept_pos}/{total_pos}"
    );

    let tfidf = TfIdfBlocker::fit(&rights);
    let hits = tfidf.top_n(&ds.train[0].left, 16);
    assert!(!hits.is_empty());
}

#[test]
fn deterministic_reproduction_across_runs() {
    let run = || {
        let ds = MagellanDataset::Beer.load(0.3);
        let mut model = HierGat::new(
            HierGatConfig::pairwise().with_tier(LmTier::MiniDistil).with_epochs(2),
            ds.arity(),
        );
        train_pairwise(&mut model, &ds).test_f1
    };
    assert_eq!(run(), run(), "identical seeds must give identical F1");
}
