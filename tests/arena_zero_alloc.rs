//! Steady-state allocation audit of the arena executor.
//!
//! After one warm-up step (plan construction, arena growth, Adam state),
//! replaying the plan — forward, backward, gradient clip, optimizer step,
//! grad clear — must record **zero** tensor allocations. The counters in
//! [`hiergat_tensor::alloc_stats`] are process-global, so this assertion
//! lives in its own test binary with a single `#[test]` (see
//! `crates/bench/Cargo.toml`); sharing a harness with concurrently running
//! tests would make the "zero" reading racy.

use hiergat_nn::{Adam, ArenaExecutor, Optimizer, ParamStore, Tape, Var};
use hiergat_tensor::{alloc_stats, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small two-layer training graph on a deferred tape.
fn record(store: &ParamStore, ids: &[hiergat_nn::ParamId]) -> (Tape, Var) {
    let mut t = Tape::deferred();
    let x = t.input(Tensor::rand_normal(8, 16, 0.0, 1.0, &mut StdRng::seed_from_u64(7)));
    let w1 = t.param(store, ids[0]);
    let b1 = t.param(store, ids[1]);
    let w2 = t.param(store, ids[2]);
    let h = t.matmul(x, w1);
    let h = t.add_row(h, b1);
    let h = t.tanh(h);
    let logits = t.matmul(h, w2);
    let loss = t.cross_entropy_logits(logits, &[0, 1, 2, 3, 0, 1, 2, 3]);
    (t, loss)
}

#[test]
fn steady_state_step_allocates_no_tensors() {
    let mut rng = StdRng::seed_from_u64(0xa3e1);
    let mut store = ParamStore::new();
    let ids = vec![
        store.add("w1", Tensor::rand_normal(16, 32, 0.0, 0.1, &mut rng)),
        store.add("b1", Tensor::zeros(1, 32)),
        store.add("w2", Tensor::rand_normal(32, 4, 0.0, 0.1, &mut rng)),
    ];
    let (tape, loss) = record(&store, &ids);
    let mut exec = ArenaExecutor::new();
    let mut opt = Adam::new(1e-3);

    // Warm-up: builds the plan, grows the arena and scratch buffers, and
    // lets Adam allocate its moment state.
    let warm = exec.step(&tape, loss, &mut store);
    assert!(warm.is_finite(), "warm-up loss {warm}");
    store.clip_grad_norm(5.0);
    opt.step(&mut store);
    store.zero_grad();
    assert_eq!(exec.plans_cached(), 1, "warm-up must cache exactly one plan");

    let before = alloc_stats();
    for step in 0..5 {
        let val = exec.step(&tape, loss, &mut store);
        assert!(val.is_finite(), "step {step}: loss {val}");
        store.clip_grad_norm(5.0);
        opt.step(&mut store);
        store.zero_grad();
    }
    let delta = alloc_stats().since(before);
    assert_eq!(
        delta.count, 0,
        "steady-state arena steps must allocate no tensors, saw {} allocations ({} bytes)",
        delta.count, delta.bytes
    );
    assert_eq!(exec.plans_cached(), 1, "replays must reuse the cached plan");
}
