//! Whole-model soundness gate for the interval abstract interpreter
//! (`hiergat_nn::absint`): for every model in [`ModelRegistry::builtin`],
//! record the eval-mode scoring graph on an *eager* tape (real dataset
//! inputs, real initialised weights — every node carries its concrete
//! forward value) and check that the abstract interpretation of the same
//! tape contains every recorded value, node by node, element by element.
//!
//! Three seedings are exercised per model, mirroring the ways `hiergat
//! audit` is used:
//!
//! * **observed** — leaves seeded with their concrete per-tensor min/max
//!   (the tightest sound seed; any containment failure here is a transfer-
//!   function bug, not slack in the seed),
//! * **symbolic** — leaves seeded with boxes `[-B, B]` wide enough to
//!   cover the recorded leaf values, the shape of a deploy-time audit
//!   where concrete inputs are unknown, and
//! * **weight-aware** — symbolic input box, concrete per-parameter
//!   ranges from the model's store (`hiergat audit --weights`).
//!
//! `ci.sh` runs this suite under `HIERGAT_THREADS=1` and `=8`: the
//! interpreter itself is serial, but the eager recording uses the kernel
//! pool, so the sweep pins down that the proven intervals are
//! width-independent facts about the graph, not artefacts of one schedule.

use hiergat_data::{CollectiveDataset, MagellanDataset, PairDataset};
use hiergat_lm::LmTier;
use hiergat_nn::{propagate, AbsintConfig, Interval, Tape};
use hiergat_runtime::{BuildContext, Example, ModelKind, ModelRegistry};

struct Fixture {
    ds: PairDataset,
    ds_c: CollectiveDataset,
}

impl Fixture {
    fn load() -> Self {
        let kind = MagellanDataset::FodorsZagats;
        Self { ds: kind.load(0.15), ds_c: kind.load_collective(0.15) }
    }

    fn context(&self, kind: ModelKind) -> BuildContext {
        let arity = match kind {
            ModelKind::Pairwise => self.ds.arity().max(1),
            ModelKind::Collective => {
                self.ds_c.train.first().map_or(1, |ex| ex.query.attrs.len().max(1))
            }
        };
        BuildContext { tier: LmTier::MiniDistil, arity }
    }

    fn example(&self, kind: ModelKind) -> Example<'_> {
        match kind {
            ModelKind::Pairwise => Example::Pair(self.ds.train.first().expect("pair")),
            ModelKind::Collective => Example::Collective(self.ds_c.train.first().expect("example")),
        }
    }
}

/// Asserts every concrete element of every tape node lies inside its
/// proven interval.
fn assert_contained(model: &str, seed: &str, tape: &Tape, iv: &[Interval]) {
    for (i, interval) in iv.iter().enumerate() {
        for (j, &v) in tape.node_value(i).as_slice().iter().enumerate() {
            assert!(
                interval.contains(v),
                "{model} [{seed}]: node {i} element {j} = {v} escapes proven {interval:?}"
            );
        }
    }
}

/// Smallest symbolic half-width covering every recorded leaf value: the
/// abstract interpreter seeds exactly the no-input ops (inputs and
/// parameter placeholders), so a box that covers those leaves must — by
/// soundness of every transfer function — cover the whole graph.
fn leaf_bound(tape: &Tape, n: usize) -> f64 {
    let mut bound = 0.0f64;
    for i in 0..n {
        if tape.op_inputs(i).is_empty() {
            for &v in tape.node_value(i).as_slice() {
                bound = bound.max(f64::from(v.abs()));
            }
        }
    }
    bound + 1.0
}

#[test]
fn abstract_intervals_contain_eager_values_for_every_model() {
    let fx = Fixture::load();
    for spec in ModelRegistry::builtin().specs() {
        let model = spec.build(&fx.context(spec.kind()));
        let ex = fx.example(spec.kind());
        // Eager tape: every node records its concrete forward value.
        let mut tape = Tape::new();
        let probs = model.record_scores(&mut tape, ex);

        let observed = propagate(&tape, model.params(), &AbsintConfig::observed());
        assert!(probs.index() < observed.len(), "{}: root not on tape", spec.name());
        assert_contained(spec.name(), "observed", &tape, &observed);

        let bound = leaf_bound(&tape, observed.len());
        let symbolic = propagate(&tape, model.params(), &AbsintConfig::symbolic(bound, bound));
        assert_contained(spec.name(), "symbolic", &tape, &symbolic);

        // Weight-aware: symbolic input box, concrete per-parameter ranges
        // from the model's store — what `hiergat audit --weights` runs.
        let aware = propagate(&tape, model.params(), &AbsintConfig::weight_aware(bound));
        assert_contained(spec.name(), "weight-aware", &tape, &aware);

        // Non-vacuity: observed seeding must prove every node bounded
        // (eager values are finite, so a top interval would mean the
        // interpreter gave up somewhere it did not need to).
        for (i, interval) in observed.iter().enumerate() {
            assert!(
                interval.is_bounded(),
                "{}: observed seeding left node {i} unbounded: {interval:?}",
                spec.name()
            );
        }
    }
}
