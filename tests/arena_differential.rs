//! Differential proof of the arena executor.
//!
//! Every builtin model is trained twice from identical seeds — once with
//! the default heap allocator (`Tape::backward`) and once through the
//! ahead-of-time arena planner (`ArenaExecutor::step`) — and after every
//! step the losses, the clipped gradients left in the parameter store, and
//! the updated parameters must be **bitwise** identical. The whole suite
//! runs at kernel split widths 1 and 8: the arena must not perturb the
//! deterministic task geometry the thread pool pins.

use hiergat::{HierGat, HierGatConfig};
use hiergat_baselines::{
    CollectiveErModel, DeepMatcher, DeepMatcherConfig, Ditto, DittoConfig, DmPlus, DmPlusConfig,
    GnnCollective, GnnConfig, GnnKind, PairModel,
};
use hiergat_data::{CollectiveExample, Entity, EntityPair};
use hiergat_lm::LmTier;
use hiergat_nn::ParamStore;

const STEPS: usize = 3;

fn pairs() -> Vec<EntityPair> {
    let mk = |lt: &str, lp: &str, rt: &str, rp: &str, label: bool| {
        EntityPair::new(
            Entity::new("l", vec![("title".into(), lt.into()), ("price".into(), lp.into())]),
            Entity::new("r", vec![("title".into(), rt.into()), ("price".into(), rp.into())]),
            label,
        )
    };
    vec![
        mk("canon eos camera", "100", "canon eos camera kit", "102", true),
        mk("apple macbook pro", "999", "leather wallet brown", "12", false),
    ]
}

fn collective() -> CollectiveExample {
    let query = Entity::new("q", vec![("title".into(), "canon eos camera".into())]);
    let candidates = vec![
        Entity::new("c0", vec![("title".into(), "canon eos camera kit".into())]),
        Entity::new("c1", vec![("title".into(), "leather wallet brown".into())]),
        Entity::new("c2", vec![("title".into(), "canon camera body".into())]),
    ];
    CollectiveExample::new(query, candidates, vec![true, false, false])
}

/// Asserts both stores hold bitwise-identical values *and* gradients.
fn assert_stores_bits_eq(tag: &str, step: usize, heap: &ParamStore, arena: &ParamStore) {
    assert_eq!(heap.len(), arena.len(), "{tag} step {step}: parameter count");
    for id in heap.ids() {
        let name = heap.name(id);
        let (hv, av) = (heap.value(id).as_slice(), arena.value(id).as_slice());
        assert_eq!(hv.len(), av.len(), "{tag} step {step}: {name} value length");
        for (k, (h, a)) in hv.iter().zip(av).enumerate() {
            assert_eq!(
                h.to_bits(),
                a.to_bits(),
                "{tag} step {step}: param {name}[{k}] {h:?} vs {a:?}"
            );
        }
        let (hg, ag) = (heap.grad(id).as_slice(), arena.grad(id).as_slice());
        assert_eq!(hg.len(), ag.len(), "{tag} step {step}: {name} grad length");
        for (k, (h, a)) in hg.iter().zip(ag).enumerate() {
            assert_eq!(
                h.to_bits(),
                a.to_bits(),
                "{tag} step {step}: grad {name}[{k}] {h:?} vs {a:?}"
            );
        }
    }
}

fn diff_pair_model<M: PairModel>(tag: &str, mut heap: M, mut arena: M, data: &[EntityPair]) {
    for step in 0..STEPS {
        for (i, pair) in data.iter().enumerate() {
            let w = if pair.label { 1.25 } else { 1.0 };
            let lh = heap.train_pair_weighted(pair, w);
            let la = arena.train_pair_weighted(pair, w);
            assert!(lh.is_finite(), "{tag} step {step} pair {i}: heap loss {lh}");
            assert_eq!(lh.to_bits(), la.to_bits(), "{tag} step {step} pair {i}: loss {lh} vs {la}");
            assert_stores_bits_eq(tag, step, heap.params(), arena.params());
        }
    }
}

fn diff_collective_model<M: CollectiveErModel>(
    tag: &str,
    mut heap: M,
    mut arena: M,
    ex: &CollectiveExample,
) {
    for step in 0..STEPS {
        let lh = heap.train_example_weighted(ex, 1.25);
        let la = arena.train_example_weighted(ex, 1.25);
        assert!(lh.is_finite(), "{tag} step {step}: heap loss {lh}");
        assert_eq!(lh.to_bits(), la.to_bits(), "{tag} step {step}: loss {lh} vs {la}");
        assert_stores_bits_eq(tag, step, heap.params(), arena.params());
    }
}

fn diff_hiergat_pairwise(data: &[EntityPair]) {
    let cfg = HierGatConfig::pairwise().with_tier(LmTier::MiniDistil);
    let arity = data[0].left.attrs.len();
    let mut heap = HierGat::new(cfg, arity);
    let mut arena = HierGat::new(cfg.with_arena(true), arity);
    for step in 0..STEPS {
        for (i, pair) in data.iter().enumerate() {
            let w = if pair.label { 1.25 } else { 1.0 };
            let lh = heap.train_pair_weighted(pair, w);
            let la = arena.train_pair_weighted(pair, w);
            assert!(lh.is_finite(), "HierGAT step {step} pair {i}: heap loss {lh}");
            assert_eq!(
                lh.to_bits(),
                la.to_bits(),
                "HierGAT step {step} pair {i}: loss {lh} vs {la}"
            );
            assert_stores_bits_eq("HierGAT", step, &heap.ps, &arena.ps);
        }
    }
}

fn diff_hiergat_collective(ex: &CollectiveExample) {
    let cfg = HierGatConfig::collective().with_tier(LmTier::MiniDistil);
    let arity = ex.query.attrs.len();
    let mut heap = HierGat::new(cfg, arity);
    let mut arena = HierGat::new(cfg.with_arena(true), arity);
    for step in 0..STEPS {
        let lh = heap.train_collective_weighted(ex, 1.25);
        let la = arena.train_collective_weighted(ex, 1.25);
        assert!(lh.is_finite(), "HierGAT+ step {step}: heap loss {lh}");
        assert_eq!(lh.to_bits(), la.to_bits(), "HierGAT+ step {step}: loss {lh} vs {la}");
        assert_stores_bits_eq("HierGAT+", step, &heap.ps, &arena.ps);
    }
}

/// Every builtin model, heap vs arena, at one kernel split width.
fn run_all(width: usize) {
    parallel::with_threads(width, || {
        let data = pairs();
        let ex = collective();
        let arity = data[0].left.attrs.len();

        diff_hiergat_pairwise(&data);
        diff_hiergat_collective(&ex);

        let ditto_cfg = DittoConfig { lm_tier: LmTier::MiniDistil, ..Default::default() };
        diff_pair_model(
            "Ditto",
            Ditto::new(ditto_cfg),
            Ditto::new(DittoConfig { use_arena: true, ..ditto_cfg }),
            &data,
        );

        let dm_cfg = DeepMatcherConfig::default();
        diff_pair_model(
            "DeepMatcher",
            DeepMatcher::new(dm_cfg, arity),
            DeepMatcher::new(DeepMatcherConfig { use_arena: true, ..dm_cfg }, arity),
            &data,
        );

        let dmp_cfg = DmPlusConfig::default();
        diff_pair_model(
            "DM+",
            DmPlus::new(dmp_cfg, arity),
            DmPlus::new(DmPlusConfig { use_arena: true, ..dmp_cfg }, arity),
            &data,
        );

        let gnn_cfg = GnnConfig::default();
        for kind in [GnnKind::Gcn, GnnKind::Gat, GnnKind::Hgat] {
            diff_collective_model(
                kind.name(),
                GnnCollective::new(kind, gnn_cfg),
                GnnCollective::new(kind, GnnConfig { use_arena: true, ..gnn_cfg }),
                &ex,
            );
        }
    });
}

#[test]
fn heap_vs_arena_bitwise_at_width_1() {
    run_all(1);
}

#[test]
fn heap_vs_arena_bitwise_at_width_8() {
    run_all(8);
}
