//! Acceptance gates for the streaming resolve pipeline
//! (`hiergat_runtime::resolve`): blocking → cascade scoring → clustering
//! on the synthetic DI2KG-style corpus.
//!
//! Three contracts, mirroring DESIGN.md §18:
//!
//! * **Quality floor** — cosine-only resolve on a 1.2k-record corpus
//!   clears a pairwise cluster F1 of 0.80 (measured 0.85 at the tuned
//!   accept threshold; the floor absorbs lexicon drift, not regressions).
//! * **Width invariance** — cluster labels are bitwise identical under
//!   kernel-pool widths 1 and 8, fitting and resolving inside each width
//!   so blocking's `par_map` fan-out is exercised too.
//! * **Full trio determinism** — with a model session adjudicating the
//!   ambiguous cosine band, two identical runs reproduce each other and
//!   the width sweep still holds (`score_pairs` is width-invariant).
//!
//! `ci.sh` additionally runs the CLI `resolve` subcommand under
//! `HIERGAT_THREADS=1` and `=8` and `cmp`s the emitted CSVs, covering the
//! same invariant across process boundaries.

use hiergat_blocking::{TfIdfCandidates, TfIdfSourceConfig};
use hiergat_data::{CorpusConfig, SynthCorpus};
use hiergat_lm::LmTier;
use hiergat_metrics::pairwise_cluster_metrics;
use hiergat_runtime::{resolve, BuildContext, ModelRegistry, ResolveConfig, Session};

fn corpus() -> SynthCorpus {
    SynthCorpus::new(CorpusConfig { n_records: 1200, copies: 3, family_size: 4, seed: 11 })
}

fn source_config() -> TfIdfSourceConfig {
    TfIdfSourceConfig { top_n: 8, min_score: 0.15, n_shards: 4, max_df: Some(0.01), fit_chunk: 256 }
}

/// The cosine-only operating point picked from the threshold sweep in
/// DESIGN.md §18 (accept 0.55 → P 0.95 / R 0.78 on this corpus).
fn cosine_config() -> ResolveConfig {
    ResolveConfig { batch_size: 256, accept: 0.55, ..ResolveConfig::default() }
}

#[test]
fn small_corpus_cosine_resolve_clears_f1_floor() {
    let corpus = corpus();
    let src = TfIdfCandidates::fit_dedup(&corpus, &source_config());
    let r = resolve(&src, &corpus, None, &cosine_config());

    assert_eq!(r.labels.len(), corpus.len());
    assert_eq!(r.stats.records, corpus.len());
    assert!(r.stats.candidates > 0, "blocking must surface candidates");
    assert_eq!(r.stats.model_scored, 0, "no session, no model calls");
    assert!(
        r.stats.clusters < corpus.len(),
        "duplicates must merge: {} clusters from {} records",
        r.stats.clusters,
        corpus.len()
    );

    let m = pairwise_cluster_metrics(&r.labels, &corpus.gold_labels());
    let pr = m.pr_f1();
    assert!(
        pr.f1 >= 0.80,
        "cluster F1 floor: got P={:.3} R={:.3} F1={:.3}",
        pr.precision,
        pr.recall,
        pr.f1
    );
}

#[test]
fn cluster_labels_bitwise_identical_across_widths() {
    let corpus = corpus();
    let run = || {
        let src = TfIdfCandidates::fit_dedup(&corpus, &source_config());
        resolve(&src, &corpus, None, &cosine_config()).labels
    };
    let serial = parallel::with_threads(1, run);
    let wide = parallel::with_threads(8, run);
    assert_eq!(serial, wide, "cluster labels must not depend on pool width");
}

#[test]
fn full_trio_with_session_is_deterministic() {
    let corpus =
        SynthCorpus::new(CorpusConfig { n_records: 400, copies: 3, family_size: 4, seed: 11 });
    let registry = ModelRegistry::builtin();
    let spec = registry.get("hiergat").expect("hiergat is a builtin model");
    // Corpus entities carry four attributes (page_title/brand/model/description).
    let cx = BuildContext { tier: LmTier::MiniDistil, arity: 4 };
    let cfg =
        ResolveConfig { batch_size: 128, score_chunk: 32, accept: 0.65, band: Some((0.45, 0.65)) };
    let run = || {
        let src = TfIdfCandidates::fit_dedup(&corpus, &source_config());
        let mut session = Session::new(spec.build(&cx));
        resolve(&src, &corpus, Some(&mut session), &cfg)
    };

    let serial = parallel::with_threads(1, run);
    assert!(serial.stats.model_scored > 0, "the band must route pairs through the session");
    assert!(serial.stats.cosine_accepted > 0, "high-cosine edges must bypass the model");

    let again = parallel::with_threads(1, run);
    assert_eq!(serial.labels, again.labels, "identical runs must reproduce bitwise");

    let wide = parallel::with_threads(8, run);
    assert_eq!(serial.labels, wide.labels, "session-adjudicated labels must be width-invariant");
}
