//! Registry conformance suite: contracts every model in
//! [`ModelRegistry::builtin`] must honour, so the registry stays the single
//! trustworthy index of the workspace's models.
//!
//! Per model: (a) session inference reproduces the eager `predict` path
//! bitwise, across repeated calls and across kernel-pool widths (1 vs 8
//! workers); (b) the recorded inference graph lints clean under eval-mode
//! rules — in particular `dropout-in-eval` never fires, because inference
//! tapes elide dropout at record time; (c) the forward-only inference plan
//! needs strictly less arena than the training plan for the same example.
//!
//! `ci.sh` runs this suite under `HIERGAT_THREADS=1` and `=8`; the width
//! sweep inside uses `parallel::with_threads`, so both gates also exercise
//! nested-width behaviour.

use hiergat_data::{CollectiveDataset, MagellanDataset, PairDataset};
use hiergat_lm::LmTier;
use hiergat_nn::Severity;
use hiergat_runtime::{BuildContext, Example, ModelKind, ModelRegistry, Session};

struct Fixture {
    ds: PairDataset,
    ds_c: CollectiveDataset,
}

impl Fixture {
    fn load() -> Self {
        let kind = MagellanDataset::FodorsZagats;
        Self { ds: kind.load(0.15), ds_c: kind.load_collective(0.15) }
    }

    fn context(&self, kind: ModelKind) -> BuildContext {
        let arity = match kind {
            ModelKind::Pairwise => self.ds.arity().max(1),
            ModelKind::Collective => {
                self.ds_c.train.first().map_or(1, |ex| ex.query.attrs.len().max(1))
            }
        };
        BuildContext { tier: LmTier::MiniDistil, arity }
    }

    fn example(&self, kind: ModelKind) -> Example<'_> {
        match kind {
            ModelKind::Pairwise => Example::Pair(self.ds.train.first().expect("pair")),
            ModelKind::Collective => Example::Collective(self.ds_c.train.first().expect("example")),
        }
    }

    /// A small scoring batch of the model's example side.
    fn batch(&self, kind: ModelKind) -> Vec<Example<'_>> {
        match kind {
            ModelKind::Pairwise => self.ds.train.iter().take(8).map(Example::Pair).collect(),
            ModelKind::Collective => {
                self.ds_c.train.iter().take(3).map(Example::Collective).collect()
            }
        }
    }
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

#[test]
fn session_scores_match_eager_predict_bitwise_for_every_model() {
    let fx = Fixture::load();
    for spec in ModelRegistry::builtin().specs() {
        let model = spec.build(&fx.context(spec.kind()));
        let ex = fx.example(spec.kind());
        let eager = model.predict(ex);
        assert_eq!(eager.len(), ex.n_outputs(), "{}", spec.name());
        let mut session = Session::new(model);
        // Two rounds: the second replays the cached inference plan.
        for round in 0..2 {
            let scored = session.score(ex);
            assert_eq!(
                bits(&scored),
                bits(&eager),
                "{} session round {round} diverged from eager predict",
                spec.name()
            );
        }
    }
}

#[test]
fn session_batches_are_deterministic_across_pool_widths() {
    let fx = Fixture::load();
    for spec in ModelRegistry::builtin().specs() {
        let batch = fx.batch(spec.kind());
        let at_width = |w: usize| -> Vec<Vec<u32>> {
            let mut session = Session::new(spec.build(&fx.context(spec.kind())));
            parallel::with_threads(w, || session.score_batch(&batch))
                .iter()
                .map(|scores| bits(scores))
                .collect()
        };
        let narrow = at_width(1);
        let wide = at_width(8);
        assert_eq!(narrow, wide, "{}: scores depend on pool width", spec.name());
        let again = at_width(8);
        assert_eq!(wide, again, "{}: repeated batch scoring diverged", spec.name());
    }
}

#[test]
fn inference_graphs_lint_clean_under_eval_rules() {
    let fx = Fixture::load();
    for spec in ModelRegistry::builtin().specs() {
        let model = spec.build(&fx.context(spec.kind()));
        let report = model.lint_inference(fx.example(spec.kind()));
        assert!(
            report.diagnostics.iter().all(|d| d.rule != "dropout-in-eval"),
            "{}: inference tape recorded dropout ops",
            spec.name()
        );
        assert!(
            report.is_clean_at(Severity::Warn),
            "{}: inference graph lints dirty:\n{report}",
            spec.name()
        );
    }
}

#[test]
fn inference_plans_use_strictly_less_arena_than_training_plans() {
    let fx = Fixture::load();
    for spec in ModelRegistry::builtin().specs() {
        let model = spec.build(&fx.context(spec.kind()));
        let ex = fx.example(spec.kind());
        let training = model.plan_training(ex);
        let inference = model.plan_inference(ex);
        assert!(
            inference.arena_bytes < training.arena_bytes,
            "{}: inference plan ({} B) must undercut the training plan ({} B)",
            spec.name(),
            inference.arena_bytes,
            training.arena_bytes
        );
    }
}
