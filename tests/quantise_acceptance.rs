//! Quantisation acceptance gate: every model in [`ModelRegistry::builtin`]
//! must survive post-training quantisation driven by the absint feasibility
//! table.
//!
//! Per model, mirroring the `hiergat quantise` CLI gate: (a) Magellan F1 on
//! a pooled evaluation split stays within `F1_DELTA` of the f32 session;
//! (b) the quantised activation arena never exceeds the f32 inference
//! arena, and the session's total footprint (arena + weights) strictly
//! shrinks; (c) quantised scoring is deterministic — bitwise identical
//! across repeated calls, across kernel-pool widths 1 and 8, and across
//! the `set_optimize(false)`/`(true)` settings (the quantised plan is built
//! from the raw inference tape, so the tape optimiser must not leak in).
//!
//! `ci.sh` runs this suite under `HIERGAT_THREADS=1` and `=8` and again
//! under `--features simd`; the width sweep inside uses
//! `parallel::with_threads`, so every gate also exercises nested-width
//! behaviour.

use hiergat_data::{CollectiveDataset, MagellanDataset, PairDataset};
use hiergat_lm::LmTier;
use hiergat_metrics::Confusion;
use hiergat_nn::QuantConfig;
use hiergat_runtime::{BuildContext, Example, ModelKind, ModelRegistry, Session};

/// Accepted |F1(quantised) - F1(f32)|. Matches the `hiergat quantise`
/// default: one flipped decision at the pooled gate split's positive
/// count (~10 positives) moves F1 by ~0.1, so the gate absorbs a single
/// flip and fails on anything systematic.
const F1_DELTA: f64 = 0.10;

struct Fixture {
    ds: PairDataset,
    ds_c: CollectiveDataset,
}

impl Fixture {
    fn load() -> Self {
        let kind = MagellanDataset::FodorsZagats;
        Self { ds: kind.load(0.15), ds_c: kind.load_collective(0.15) }
    }

    fn context(&self, kind: ModelKind) -> BuildContext {
        let arity = match kind {
            ModelKind::Pairwise => self.ds.arity().max(1),
            ModelKind::Collective => {
                self.ds_c.train.first().map_or(1, |ex| ex.query.attrs.len().max(1))
            }
        };
        BuildContext { tier: LmTier::MiniDistil, arity }
    }

    /// Pooled evaluation split with ground-truth labels in output order.
    /// Every split is pooled because the gate checks the quantisation
    /// contract, not generalisation — the small Magellan test splits make
    /// F1 far too coarse on their own.
    fn eval(&self, kind: ModelKind) -> (Vec<Example<'_>>, Vec<bool>) {
        match kind {
            ModelKind::Pairwise => {
                let pool: Vec<&hiergat_data::EntityPair> =
                    [&self.ds.train, &self.ds.valid, &self.ds.test].into_iter().flatten().collect();
                let pairs = &pool[..pool.len().min(64)];
                (
                    pairs.iter().map(|p| Example::Pair(p)).collect(),
                    pairs.iter().map(|p| p.label).collect(),
                )
            }
            ModelKind::Collective => {
                let pool =
                    if self.ds_c.test.is_empty() { &self.ds_c.train } else { &self.ds_c.test };
                let exs = &pool[..pool.len().min(6)];
                (
                    exs.iter().map(Example::Collective).collect(),
                    exs.iter().flat_map(|e| e.labels.iter().copied()).collect(),
                )
            }
        }
    }

    /// A small scoring batch for the determinism sweeps.
    fn batch(&self, kind: ModelKind) -> Vec<Example<'_>> {
        match kind {
            ModelKind::Pairwise => self.ds.train.iter().take(8).map(Example::Pair).collect(),
            ModelKind::Collective => {
                self.ds_c.train.iter().take(3).map(Example::Collective).collect()
            }
        }
    }
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

fn f1(scores: &[f32], labels: &[bool], threshold: f32) -> f64 {
    let preds: Vec<bool> = scores.iter().map(|s| *s >= threshold).collect();
    Confusion::from_predictions(&preds, labels).pr_f1().f1
}

#[test]
fn every_registry_model_quantises_within_the_f1_and_storage_gates() {
    let fx = Fixture::load();
    for spec in ModelRegistry::builtin().specs() {
        let (examples, labels) = fx.eval(spec.kind());
        assert!(!examples.is_empty(), "{}: empty evaluation pool", spec.name());
        let mut session = Session::new(spec.build(&fx.context(spec.kind())));
        let threshold = session.threshold();
        let f32_scores: Vec<f32> = session.score_batch(&examples).into_iter().flatten().collect();
        assert_eq!(f32_scores.len(), labels.len(), "{}", spec.name());

        let report = session
            .quantise(examples[0], &QuantConfig::default())
            .unwrap_or_else(|e| panic!("{}: quantise failed: {e}", spec.name()));
        assert!(session.is_quantised(), "{}", spec.name());
        let q_scores: Vec<f32> = session.score_batch(&examples).into_iter().flatten().collect();

        // F1 gate: quantised decisions must track the f32 session's.
        let delta = f1(&q_scores, &labels, threshold) - f1(&f32_scores, &labels, threshold);
        assert!(
            delta.abs() <= F1_DELTA,
            "{}: quantised F1 drifted {delta:+.3} (gate {F1_DELTA})",
            spec.name()
        );

        // Storage gate: the activation arena must never grow (graphs whose
        // live peak is audit-opaque — e.g. GCN's division-normalised
        // adjacency products — bottom out at exact equality), and the
        // session's total footprint must strictly shrink.
        assert!(
            report.arena_bytes <= report.f32_arena_bytes,
            "{}: quantised arena {} B exceeds f32 arena {} B",
            spec.name(),
            report.arena_bytes,
            report.f32_arena_bytes
        );
        assert!(
            report.arena_bytes + report.weights.bytes_quantised
                < report.f32_arena_bytes + report.weights.bytes_f32,
            "{}: total footprint did not shrink (arena {} + weights {} vs {} + {})",
            spec.name(),
            report.arena_bytes,
            report.weights.bytes_quantised,
            report.f32_arena_bytes,
            report.weights.bytes_f32
        );
        // The serial executor owns at least the report's arena once it has
        // replayed a score (batch scoring fans out to pool-worker executors,
        // so only a serial call is guaranteed to touch this arena); the
        // capacity is a peak across every shape replayed so far.
        session.score(examples[0]);
        let live = session.quantised_arena_bytes().unwrap_or(0);
        assert!(
            live >= report.arena_bytes,
            "{}: live arena {} B below the reported plan {} B",
            spec.name(),
            live,
            report.arena_bytes
        );
        // The audit classified at least one parameter below f32, otherwise
        // the "quantised" session is a no-op wearing the label.
        assert!(
            report.weights.int8_params + report.weights.f16_params > 0,
            "{}: feasibility table demoted nothing below f32",
            spec.name()
        );
    }
}

#[test]
fn quantised_scoring_is_deterministic_across_widths_and_optimizer_settings() {
    let fx = Fixture::load();
    for spec in ModelRegistry::builtin().specs() {
        let batch = fx.batch(spec.kind());
        // One batch scored under a given optimiser setting and pool width.
        let scored = |optimize: bool, width: usize| -> Vec<Vec<u32>> {
            let mut session = Session::new(spec.build(&fx.context(spec.kind())));
            session.set_optimize(optimize);
            session
                .quantise(batch[0], &QuantConfig::default())
                .unwrap_or_else(|e| panic!("{}: quantise failed: {e}", spec.name()));
            parallel::with_threads(width, || session.score_batch(&batch))
                .iter()
                .map(|scores| bits(scores))
                .collect()
        };
        let baseline = scored(true, 1);
        assert_eq!(baseline, scored(true, 8), "{}: scores depend on pool width", spec.name());
        // The quantised plan is built from the raw inference tape; the
        // certified tape optimiser must not leak into it.
        assert_eq!(
            baseline,
            scored(false, 1),
            "{}: set_optimize changed quantised scores",
            spec.name()
        );
        assert_eq!(
            baseline,
            scored(false, 8),
            "{}: set_optimize x width changed quantised scores",
            spec.name()
        );
        // Repeated scoring through the cached quantised plan replays
        // bitwise, and quantising does not disturb later f32 comparisons.
        let mut session = Session::new(spec.build(&fx.context(spec.kind())));
        session
            .quantise(batch[0], &QuantConfig::default())
            .unwrap_or_else(|e| panic!("{}: quantise failed: {e}", spec.name()));
        let first: Vec<Vec<u32>> = session.score_batch(&batch).iter().map(|s| bits(s)).collect();
        let second: Vec<Vec<u32>> = session.score_batch(&batch).iter().map(|s| bits(s)).collect();
        assert_eq!(first, second, "{}: quantised replay diverged", spec.name());
        assert_eq!(first, baseline, "{}: fresh quantised session diverged", spec.name());
    }
}
