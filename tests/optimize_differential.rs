//! Differential proof of the certified tape optimiser.
//!
//! Every builtin model's inference scoring graph is optimised under the
//! verified configuration — every applied rewrite must carry a validated
//! shape + interval certificate and the run must not fall back — and the
//! optimised [`Session`] replay must score **bitwise** identically to the
//! model's eager `predict` path. The optimised graph must also stay
//! lint-clean at `--deny warn` (the fix-it hints the optimiser implements
//! must not themselves introduce diagnostics). The whole suite runs at
//! kernel split widths 1 and 8: optimised replay must not perturb the
//! deterministic task geometry the thread pool pins.

use hiergat_data::MagellanDataset;
use hiergat_lm::LmTier;
use hiergat_nn::{lint_graph, optimize, LintConfig, OptimizeConfig, Severity, Tape};
use hiergat_runtime::{BuildContext, Example, ModelKind, ModelRegistry, Session};

/// Every builtin model, eager vs optimised session, at one split width.
fn run_all(width: usize) {
    parallel::with_threads(width, || {
        let ds = MagellanDataset::FodorsZagats.load(0.15);
        let ds_c = MagellanDataset::FodorsZagats.load_collective(0.15);
        let pair = ds.train.first().expect("pair");
        let ex_c = ds_c.train.first().expect("collective example");
        let pair_cx = BuildContext { tier: LmTier::MiniDistil, arity: ds.arity().max(1) };
        let coll_cx =
            BuildContext { tier: LmTier::MiniDistil, arity: ex_c.query.attrs.len().max(1) };
        for spec in ModelRegistry::builtin().specs() {
            let (cx, example) = match spec.kind() {
                ModelKind::Pairwise => (&pair_cx, Example::Pair(pair)),
                ModelKind::Collective => (&coll_cx, Example::Collective(ex_c)),
            };
            let model = spec.build(cx);
            let tag = spec.display();

            // Translation validation: every rewrite certified, shape and
            // interval checks green, no identity fallback.
            let report = model.optimize_report(example, true);
            assert!(!report.fallback, "{tag}: verified optimisation fell back");
            assert!(report.all_valid(), "{tag}: invalid certificates\n{report}");
            assert!(
                report.nodes_after <= report.nodes_before,
                "{tag}: optimiser grew the graph ({} -> {} nodes)",
                report.nodes_before,
                report.nodes_after
            );

            // The optimised graph stays lint-clean at deny-warn: applying
            // the linter's own fix-it rewrites cannot re-introduce
            // diagnostics.
            let mut t = Tape::shape_only();
            let probs = model.record_scores(&mut t, example);
            let opt = optimize(&t, probs, model.params(), &OptimizeConfig::default());
            let lint = lint_graph(&opt.tape, opt.root, model.params(), &LintConfig::eval());
            assert!(
                lint.is_clean_at(Severity::Warn),
                "{tag}: optimised tape lints dirty at --deny warn\n{lint}"
            );

            // The optimised session replay is bitwise-equal to eager
            // prediction, on the first call (plan build) and on cache hits.
            let eager = model.predict(example);
            let mut session = Session::new(model);
            assert!(session.optimizes(), "{tag}: sessions must optimise by default");
            for round in 0..2 {
                let scored = session.score(example);
                assert_eq!(scored.len(), eager.len(), "{tag} round {round}: output count");
                for (k, (e, s)) in eager.iter().zip(&scored).enumerate() {
                    assert_eq!(
                        e.to_bits(),
                        s.to_bits(),
                        "{tag} round {round}: output {k} eager {e} vs optimised session {s}"
                    );
                }
            }
        }
    });
}

#[test]
fn optimised_sessions_match_eager_bitwise_at_width_1() {
    run_all(1);
}

#[test]
fn optimised_sessions_match_eager_bitwise_at_width_8() {
    run_all(8);
}
