//! Integration tests for the collective (1 + N candidates) pipeline.

use hiergat::{train_collective, HierGat, HierGatConfig};
use hiergat_baselines::{
    flatten_collective, train_collective_model, GnnCollective, GnnConfig, GnnKind,
};
use hiergat_data::{load_di2kg, Di2kgCategory, MagellanDataset};
use hiergat_lm::LmTier;

#[test]
fn collective_hiergat_plus_trains_and_evaluates() {
    let ds = MagellanDataset::DblpAcm.load_collective(0.3);
    let arity = ds.train[0].query.arity();
    let mut model = HierGat::new(
        HierGatConfig::collective().with_tier(LmTier::MiniDistil).with_epochs(5),
        arity,
    );
    let report = train_collective(&mut model, &ds);
    // Collective candidate sets are TF-IDF nearest neighbours (1 positive in
    // 16 lookalikes) and this test trains on ~20 queries, so assert the
    // pipeline learns something real rather than a strong absolute F1.
    assert!(report.test_f1 > 0.15, "HG+ on clean citations: {}", report.test_f1);
    assert_eq!(report.epochs_run, 5);
}

#[test]
fn alignment_ablation_changes_behaviour() {
    let ds = MagellanDataset::AmazonGoogle.load_collective(0.15);
    let arity = ds.train[0].query.arity();
    let run = |use_alignment: bool| {
        let mut model = HierGat::new(
            HierGatConfig { use_alignment, ..HierGatConfig::collective() }
                .with_tier(LmTier::MiniDistil)
                .with_epochs(2),
            arity,
        );
        train_collective(&mut model, &ds).test_f1
    };
    // Not asserting which wins at this tiny scale — only that the switch is
    // live (different compute graphs give different results).
    assert_ne!(run(true), run(false));
}

#[test]
fn gnn_baselines_run_on_di2kg() {
    let ds = load_di2kg(Di2kgCategory::Camera, 0.15);
    for kind in [GnnKind::Gcn, GnnKind::Hgat] {
        let mut model = GnnCollective::new(kind, GnnConfig { epochs: 2, ..Default::default() });
        let report = train_collective_model(&mut model, &ds);
        assert!(
            report.test_f1.is_finite() && report.test_f1 >= 0.0,
            "{} produced invalid F1",
            kind.name()
        );
    }
}

#[test]
fn flattened_collective_matches_pairwise_protocol() {
    let ds = MagellanDataset::WalmartAmazon.load_collective(0.15);
    let flat = flatten_collective(&ds);
    assert_eq!(flat.len(), ds.total_candidates());
    // Flat test pairs come only from test queries (no leakage).
    assert_eq!(
        flat.test.len(),
        ds.test.iter().map(hiergat_data::CollectiveExample::n_candidates).sum::<usize>()
    );
}
